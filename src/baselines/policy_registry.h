// Named battery-policy factory (the policy slice of the scenario registry).
//
// A scenario spec selects the controller by name (`policy=rlblh`) and tunes
// it through `policy.*` parameters; the scenario assembler merges the
// shared geometry (battery, nd, seed, intervals, cap) into the same bag, so
// one parameter set describes the whole controller. Registered policies:
//
//   rlblh         — the paper's learned controller (alias: rl-blh).
//                   Params: geometry + actions, alpha, epsilon, decay,
//                   decay_by_episodes, alpha_floor, epsilon_floor, double_q,
//                   replay_random_start, reuse, reuse_days, reuse_repeats,
//                   syn, syn_period, syn_last_day, syn_repeats, stats_bins,
//                   stats_reservoir.
//   random_pulse  — feasible pulses, uniformly random (aliases:
//                   random-pulse, random). Params: geometry + actions.
//   lowpass       — constant-target flattening baseline (alias: low-pass).
//                   Params: battery, intervals, cap, smoothing, target.
//   stepping      — quantized hold-the-step baseline. Params: battery,
//                   intervals, cap, step, margin.
//   mdp           — quantized-state DP baseline (alias: mdp-dp); built
//                   UNSOLVED — callers must feed observe_training_day and
//                   solve() before running it (run_scenario does this).
//                   Params: battery, nd, intervals, cap, actions, levels,
//                   usage_levels.
//   none          — no-battery passthrough reference (aliases: passthrough,
//                   no-battery). No params.
//
// This table lives in rlblh_baselines because it is the lowest layer that
// sees both the RL-BLH controller (rlblh_core) and the baseline schemes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/policy.h"
#include "core/registry.h"

namespace rlblh {

/// Builds the named policy from its merged parameter bag. Unknown names or
/// parameters raise ConfigError; invalid values fail the usual config
/// validation of the underlying policy type.
std::unique_ptr<BlhPolicy> make_policy(const std::string& name,
                                       const SpecParams& params);

/// The RlBlhConfig a given parameter bag describes (shared by the rlblh and
/// random_pulse factories; exposed for benches that need the config itself,
/// e.g. for decisions_per_day()).
RlBlhConfig make_rlblh_config(const SpecParams& params);

/// Registered primary policy names, sorted (for --list).
std::vector<std::string> policy_names();

}  // namespace rlblh
