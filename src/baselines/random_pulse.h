// Random-pulse ablation policy: RL-BLH's pulse structure without its
// learning.
//
// Emits rectangular pulses of width n_D whose magnitude is drawn uniformly
// at random among the *feasible* actions at each decision boundary (the
// same Section III-B guard rule RL-BLH uses). Comparing this against the
// learned controller separates what the pulse shaping alone buys (most of
// the privacy) from what the Q-learning buys (the cost savings): see
// bench/abl_pulse_policy.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "core/policy.h"
#include "util/rng.h"

namespace rlblh {

/// Uniformly random feasible pulses (no learning, no price awareness).
class RandomPulsePolicy final : public BlhPolicy {
 public:
  /// Uses the geometry fields of RlBlhConfig (n_M, n_D, x_M, b_M, a_M) and
  /// its seed; the learning fields are ignored.
  explicit RandomPulsePolicy(RlBlhConfig config);

  void begin_day(const TouSchedule& prices) override;
  double reading(std::size_t n, double battery_level) override;
  void observe_usage(std::size_t n, double usage) override;
  std::string_view name() const override { return "random-pulse"; }

  // Pulse-block fast path: one uniform draw per block, the same draw the
  // per-interval path makes at each decision boundary.
  std::size_t pulse_width() const override {
    return config_.decision_interval;
  }
  double fill_block(std::size_t n0, std::size_t width,
                    double battery_level) override;
  void observe_block(std::size_t n0, ConstTraceLane usage) override;

  // Lane-native batch entry points (engine contract: every lane is a
  // RandomPulsePolicy). Each lane draws its pulse from its own engine, in
  // lane order — per lane exactly the fill_block draw sequence.
  void fill_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                  std::size_t width, const double* levels,
                  double* y_out) override;
  void observe_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                     const LaneBlock& usage) override;

  /// Same feasibility rule as RL-BLH (Section III-B).
  std::vector<std::size_t> allowed_actions(double battery_level) const;

 private:
  /// Reference to one of the three precomputed feasible sets; the hot path
  /// calls this once per decision, so it must not allocate.
  const std::vector<std::size_t>& feasible(double battery_level) const;

  RlBlhConfig config_;
  Rng rng_;
  std::size_t current_action_ = 0;

  // Precomputed feasible-action sets (see feasible()).
  std::vector<std::size_t> actions_all_;
  std::vector<std::size_t> actions_zero_only_;
  std::vector<std::size_t> actions_max_only_;
};

}  // namespace rlblh
