#include "baselines/random_pulse.h"

#include "util/error.h"

namespace rlblh {

namespace {
RlBlhConfig validated(RlBlhConfig config) {
  config.validate();
  return config;
}
}  // namespace

RandomPulsePolicy::RandomPulsePolicy(RlBlhConfig config)
    : config_(validated(config)), rng_(config_.seed) {
  actions_all_.resize(config_.num_actions);
  for (std::size_t a = 0; a < actions_all_.size(); ++a) actions_all_[a] = a;
  actions_zero_only_ = {0};
  actions_max_only_ = {config_.num_actions - 1};
}

void RandomPulsePolicy::begin_day(const TouSchedule& prices) {
  RLBLH_REQUIRE(prices.intervals() == config_.intervals_per_day,
                "RandomPulsePolicy: price schedule length mismatch");
}

const std::vector<std::size_t>& RandomPulsePolicy::feasible(
    double battery_level) const {
  if (battery_level > config_.high_guard()) return actions_zero_only_;
  if (battery_level < config_.low_guard()) return actions_max_only_;
  return actions_all_;
}

std::vector<std::size_t> RandomPulsePolicy::allowed_actions(
    double battery_level) const {
  return feasible(battery_level);
}

double RandomPulsePolicy::reading(std::size_t n, double battery_level) {
  RLBLH_REQUIRE(n < config_.intervals_per_day,
                "RandomPulsePolicy: interval out of range");
  if (n % config_.decision_interval == 0) {
    const auto& allowed = feasible(battery_level);
    const auto i = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(allowed.size() - 1)));
    current_action_ = allowed[i];
  }
  return config_.action_magnitude(current_action_);
}

double RandomPulsePolicy::fill_block(std::size_t n0, std::size_t width,
                                     double battery_level) {
  RLBLH_REQUIRE(n0 < config_.intervals_per_day &&
                    n0 + width <= config_.intervals_per_day,
                "RandomPulsePolicy: block out of range");
  RLBLH_REQUIRE(n0 % config_.decision_interval == 0,
                "RandomPulsePolicy: block must start on a decision boundary");
  // One uniform draw per block — the same single draw the per-interval
  // path makes when n crosses a decision boundary, over a feasible set of
  // the same size, so the RNG stream is bitwise unchanged.
  const auto& allowed = feasible(battery_level);
  const auto i = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(allowed.size() - 1)));
  current_action_ = allowed[i];
  return config_.action_magnitude(current_action_);
}

void RandomPulsePolicy::observe_usage(std::size_t n, double usage) {
  RLBLH_REQUIRE(n < config_.intervals_per_day && usage >= 0.0,
                "RandomPulsePolicy: bad observation");
}

void RandomPulsePolicy::observe_block(std::size_t n0, ConstTraceLane usage) {
  RLBLH_REQUIRE(n0 + usage.size() <= config_.intervals_per_day,
                "RandomPulsePolicy: block out of range");
  for (std::size_t i = 0; i < usage.size(); ++i) {
    RLBLH_REQUIRE(usage[i] >= 0.0, "RandomPulsePolicy: bad observation");
  }
}

void RandomPulsePolicy::fill_lanes(std::span<BlhPolicy* const> lanes,
                                   std::size_t n0, std::size_t width,
                                   const double* levels, double* y_out) {
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    // Devirtualized per lane (the class is final); each lane's engine sees
    // exactly the one draw its scalar fill_block would make.
    y_out[k] = static_cast<RandomPulsePolicy&>(*lanes[k])
                   .fill_block(n0, width, levels[k]);
  }
}

void RandomPulsePolicy::observe_lanes(std::span<BlhPolicy* const> lanes,
                                      std::size_t n0, const LaneBlock& usage) {
  // observe_block only validates, so the lane loop collapses to the same
  // range checks plus one contiguous pass over the interval-major block —
  // every value still hits the identical >= 0 requirement, without W
  // strided walks. (On invalid data the failing REQUIRE can differ from
  // the per-lane default's, but both paths throw.)
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    const auto& lane = static_cast<const RandomPulsePolicy&>(*lanes[k]);
    RLBLH_REQUIRE(n0 + usage.width <= lane.config_.intervals_per_day,
                  "RandomPulsePolicy: block out of range");
  }
  const double* values = usage.data;
  const std::size_t count = usage.width * usage.lanes;
  for (std::size_t i = 0; i < count; ++i) {
    RLBLH_REQUIRE(values[i] >= 0.0, "RandomPulsePolicy: bad observation");
  }
}

}  // namespace rlblh
