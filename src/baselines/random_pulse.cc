#include "baselines/random_pulse.h"

#include "util/error.h"

namespace rlblh {

namespace {
RlBlhConfig validated(RlBlhConfig config) {
  config.validate();
  return config;
}
}  // namespace

RandomPulsePolicy::RandomPulsePolicy(RlBlhConfig config)
    : config_(validated(config)), rng_(config_.seed) {}

void RandomPulsePolicy::begin_day(const TouSchedule& prices) {
  RLBLH_REQUIRE(prices.intervals() == config_.intervals_per_day,
                "RandomPulsePolicy: price schedule length mismatch");
}

std::vector<std::size_t> RandomPulsePolicy::allowed_actions(
    double battery_level) const {
  if (battery_level > config_.high_guard()) return {0};
  if (battery_level < config_.low_guard()) {
    return {config_.num_actions - 1};
  }
  std::vector<std::size_t> all(config_.num_actions);
  for (std::size_t a = 0; a < all.size(); ++a) all[a] = a;
  return all;
}

double RandomPulsePolicy::reading(std::size_t n, double battery_level) {
  RLBLH_REQUIRE(n < config_.intervals_per_day,
                "RandomPulsePolicy: interval out of range");
  if (n % config_.decision_interval == 0) {
    const auto allowed = allowed_actions(battery_level);
    const auto i = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(allowed.size() - 1)));
    current_action_ = allowed[i];
  }
  return config_.action_magnitude(current_action_);
}

void RandomPulsePolicy::observe_usage(std::size_t n, double usage) {
  RLBLH_REQUIRE(n < config_.intervals_per_day && usage >= 0.0,
                "RandomPulsePolicy: bad observation");
}

}  // namespace rlblh
