#include "baselines/lowpass.h"

#include <algorithm>

#include "util/error.h"

namespace rlblh {

LowPassPolicy::LowPassPolicy(LowPassConfig config)
    : config_(config), target_(config.initial_target) {
  RLBLH_REQUIRE(config.intervals_per_day >= 1,
                "LowPassPolicy: need at least one interval");
  RLBLH_REQUIRE(config.usage_cap > 0.0, "LowPassPolicy: usage cap must be > 0");
  RLBLH_REQUIRE(config.battery_capacity > 0.0,
                "LowPassPolicy: battery capacity must be > 0");
  RLBLH_REQUIRE(config.target_smoothing > 0.0 && config.target_smoothing <= 1.0,
                "LowPassPolicy: smoothing must be in (0, 1]");
  RLBLH_REQUIRE(config.initial_target >= 0.0 &&
                    config.initial_target <= config.usage_cap,
                "LowPassPolicy: initial target must be in [0, x_M]");
}

void LowPassPolicy::begin_day(const TouSchedule& prices) {
  RLBLH_REQUIRE(prices.intervals() == config_.intervals_per_day,
                "LowPassPolicy: price schedule length mismatch");
}

double LowPassPolicy::reading(std::size_t n, double battery_level) {
  RLBLH_REQUIRE(n < config_.intervals_per_day,
                "LowPassPolicy: interval out of range");
  // Hold the target, but never request more than the battery can absorb
  // (usage could be zero) and never less than would risk running dry
  // (usage could be x_M). When the two constraints conflict — battery
  // nearly empty AND nearly full is impossible, so they cannot — the
  // feasible window is [lo, hi].
  const double hi =
      std::max(0.0, config_.battery_capacity - battery_level);
  const double lo =
      std::clamp(config_.usage_cap - battery_level, 0.0, hi);
  return std::clamp(target_, lo, std::min(hi, config_.usage_cap));
}

void LowPassPolicy::observe_usage(std::size_t n, double usage) {
  RLBLH_REQUIRE(n < config_.intervals_per_day,
                "LowPassPolicy: interval out of range");
  RLBLH_REQUIRE(usage >= 0.0, "LowPassPolicy: usage must be >= 0");
  // Slow EMA toward the observed mean draw keeps the long-run battery level
  // balanced without reacting to individual appliance events.
  target_ += config_.target_smoothing * (usage - target_);
  target_ = std::clamp(target_, 0.0, config_.usage_cap);
}

}  // namespace rlblh
