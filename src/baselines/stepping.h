// Stepping BLH baseline (after Yang et al., CCS 2012 — the paper's [6]).
//
// The stepping family quantizes the meter reading to multiples of a step
// size beta and holds the current step as long as the battery can absorb
// the difference to the real load; the step moves up or down only when the
// battery approaches a bound. Like the low-pass scheme it targets the
// high-frequency signature; unlike RL-BLH the step changes are driven by
// the battery hitting its safety margins, which is exactly the residual
// correlation channel the paper's Section III-A analyzes.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "core/policy.h"

namespace rlblh {

/// Configuration of the stepping baseline.
struct SteppingConfig {
  std::size_t intervals_per_day = 1440;
  double usage_cap = 0.08;        ///< x_M, kWh per interval
  double battery_capacity = 3.0;  ///< b_M, kWh
  double step = 0.01;             ///< beta: reading quantum, kWh per interval
  /// Fraction of capacity kept as head/tail room before the step moves
  /// (the scheme's only tunable; smaller margins mean rarer step changes
  /// but harder saturation).
  double margin_fraction = 0.15;

  /// Throws ConfigError when parameters are out of range.
  void validate() const;
};

/// Hold-the-step controller.
class SteppingPolicy final : public BlhPolicy {
 public:
  explicit SteppingPolicy(SteppingConfig config);

  void begin_day(const TouSchedule& prices) override;
  double reading(std::size_t n, double battery_level) override;
  void observe_usage(std::size_t n, double usage) override;
  std::string_view name() const override { return "stepping"; }

  // Pulse-block fast path. The step decision re-evaluates the battery band
  // every interval, so blocks are width 1; the overrides forward to the
  // per-interval members and exist so the engine's blocked loop (with its
  // per-segment rate hoisting and resize-once writes) applies here too.
  std::size_t pulse_width() const override { return 1; }
  double fill_block(std::size_t n0, std::size_t width,
                    double battery_level) override {
    (void)width;
    return reading(n0, battery_level);
  }
  void observe_block(std::size_t n0, ConstTraceLane usage) override {
    for (std::size_t i = 0; i < usage.size(); ++i) {
      observe_usage(n0 + i, usage[i]);
    }
  }

  // Lane-native batch entry points (engine contract: every lane is a
  // SteppingPolicy). Draw-free policy, so lane-native just means one
  // virtual call with devirtualized per-lane bodies.
  void fill_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                  std::size_t width, const double* levels,
                  double* y_out) override {
    (void)width;
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      y_out[k] =
          static_cast<SteppingPolicy&>(*lanes[k]).reading(n0, levels[k]);
    }
  }
  void observe_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                     const LaneBlock& usage) override {
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      static_cast<SteppingPolicy&>(*lanes[k])
          .observe_block(n0, usage.lane(k));
    }
  }

  /// Current step index (reading = index * step).
  std::size_t step_index() const { return level_; }

  /// Number of step changes since construction (the leakage events).
  std::size_t step_changes() const { return changes_; }

 private:
  SteppingConfig config_;
  std::size_t max_level_;  ///< highest step index (ceil of x_M / beta)
  std::size_t level_;      ///< current step index
  std::size_t changes_ = 0;
  double recent_usage_;    ///< EMA of usage, seeds the step when it moves
};

}  // namespace rlblh
