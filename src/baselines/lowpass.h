// High-frequency flattening BLH baseline (the paper's "low-pass" scheme,
// after Kalogridis et al. [5]).
//
// The scheme tries to hold the meter reading at a constant target — a slowly
// adapted estimate of the household's average draw — so the high-frequency
// variation of the usage profile is removed. Near the battery bounds the
// reading must deviate from the target to stay feasible, which is exactly
// the leakage the paper points out: the reading's envelope still tracks the
// usage envelope (Figure 4b), and cost savings are arbitrary because price
// is never considered (Figure 5c).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string_view>

#include "core/policy.h"
#include "util/running_stats.h"

namespace rlblh {

/// Configuration of the low-pass baseline.
struct LowPassConfig {
  std::size_t intervals_per_day = 1440;
  double usage_cap = 0.08;        ///< x_M, kWh per interval
  double battery_capacity = 3.0;  ///< b_M, kWh
  /// Smoothing factor of the exponential moving average that tracks the
  /// household's mean draw (per interval); smaller adapts more slowly.
  double target_smoothing = 0.002;
  /// Initial target before any usage has been observed (kWh per interval).
  double initial_target = 0.01;
};

/// Best-effort constant-reading controller.
class LowPassPolicy final : public BlhPolicy {
 public:
  explicit LowPassPolicy(LowPassConfig config);

  void begin_day(const TouSchedule& prices) override;
  double reading(std::size_t n, double battery_level) override;
  void observe_usage(std::size_t n, double usage) override;
  std::string_view name() const override { return "low-pass"; }

  /// Current flattening target (kWh per interval).
  double target() const { return target_; }

 private:
  LowPassConfig config_;
  double target_;
};

/// No-battery reference: the meter reports usage directly (y_n = x_n).
/// Yields SR = 0, CC = 1 and maximal MI; used as the unprotected baseline.
class PassthroughPolicy final : public BlhPolicy {
 public:
  void begin_day(const TouSchedule& /*prices*/) override {}
  double reading(std::size_t /*n*/, double /*battery_level*/) override {
    return 0.0;  // ignored: the simulator substitutes x_n for passthrough
  }
  void observe_usage(std::size_t /*n*/, double /*usage*/) override {}
  std::string_view name() const override { return "no-battery"; }
  bool passthrough() const override { return true; }

  // Pulse-block fast path: there is no decision to make, so the whole day
  // is one block (the engine clamps the width to the day length).
  std::size_t pulse_width() const override {
    return std::numeric_limits<std::size_t>::max();
  }
  double fill_block(std::size_t /*n0*/, std::size_t /*width*/,
                    double /*battery_level*/) override {
    return 0.0;  // ignored: the simulator substitutes x_n for passthrough
  }
  void observe_block(std::size_t /*n0*/, ConstTraceLane /*usage*/) override {}

  // Lane-native batch entry points: nothing to decide or learn per lane.
  void fill_lanes(std::span<BlhPolicy* const> lanes, std::size_t /*n0*/,
                  std::size_t /*width*/, const double* /*levels*/,
                  double* y_out) override {
    for (std::size_t k = 0; k < lanes.size(); ++k) y_out[k] = 0.0;
  }
  void observe_lanes(std::span<BlhPolicy* const> /*lanes*/,
                     std::size_t /*n0*/, const LaneBlock& /*usage*/) override {
  }
};

}  // namespace rlblh
