#include "baselines/policy_registry.h"

#include "baselines/lowpass.h"
#include "baselines/mdp.h"
#include "baselines/random_pulse.h"
#include "baselines/stepping.h"
#include "core/rlblh_policy.h"

namespace rlblh {

namespace {

/// Geometry keys the scenario assembler merges into every policy bag.
/// Factories that ignore some of them still accept the full set, so one
/// spec can switch policy names without re-tailoring its parameters.
const std::vector<std::string> kGeometryKeys = {"battery", "nd", "seed",
                                                "intervals", "cap",
                                                "actions"};

std::vector<std::string> with_geometry(std::vector<std::string> extra) {
  extra.insert(extra.end(), kGeometryKeys.begin(), kGeometryKeys.end());
  return extra;
}

Registry<std::unique_ptr<BlhPolicy>> build_registry() {
  Registry<std::unique_ptr<BlhPolicy>> registry;
  registry.set_family("policy");

  registry.add(
      "rlblh",
      [](const SpecParams& params) -> std::unique_ptr<BlhPolicy> {
        return std::make_unique<RlBlhPolicy>(make_rlblh_config(params));
      },
      {"rl-blh"});

  registry.add(
      "random_pulse",
      [](const SpecParams& params) -> std::unique_ptr<BlhPolicy> {
        params.allow_only(kGeometryKeys, "policy 'random_pulse'");
        return std::make_unique<RandomPulsePolicy>(make_rlblh_config(params));
      },
      {"random-pulse", "random"});

  registry.add(
      "lowpass",
      [](const SpecParams& params) -> std::unique_ptr<BlhPolicy> {
        params.allow_only(with_geometry({"smoothing", "target"}),
                          "policy 'lowpass'");
        LowPassConfig config;
        config.intervals_per_day =
            params.get_size("intervals", config.intervals_per_day);
        config.usage_cap = params.get_double("cap", config.usage_cap);
        config.battery_capacity =
            params.get_double("battery", config.battery_capacity);
        config.target_smoothing =
            params.get_double("smoothing", config.target_smoothing);
        config.initial_target =
            params.get_double("target", config.initial_target);
        return std::make_unique<LowPassPolicy>(config);
      },
      {"low-pass"});

  registry.add("stepping",
               [](const SpecParams& params) -> std::unique_ptr<BlhPolicy> {
                 params.allow_only(with_geometry({"step", "margin"}),
                                   "policy 'stepping'");
                 SteppingConfig config;
                 config.intervals_per_day =
                     params.get_size("intervals", config.intervals_per_day);
                 config.usage_cap = params.get_double("cap", config.usage_cap);
                 config.battery_capacity =
                     params.get_double("battery", config.battery_capacity);
                 config.step = params.get_double("step", config.step);
                 config.margin_fraction =
                     params.get_double("margin", config.margin_fraction);
                 return std::make_unique<SteppingPolicy>(config);
               });

  registry.add(
      "mdp",
      [](const SpecParams& params) -> std::unique_ptr<BlhPolicy> {
        params.allow_only(with_geometry({"levels", "usage_levels"}),
                          "policy 'mdp'");
        MdpConfig config;
        config.intervals_per_day =
            params.get_size("intervals", config.intervals_per_day);
        config.decision_interval =
            params.get_size("nd", config.decision_interval);
        config.usage_cap = params.get_double("cap", config.usage_cap);
        config.battery_capacity =
            params.get_double("battery", config.battery_capacity);
        config.num_actions = params.get_size("actions", config.num_actions);
        config.battery_levels =
            params.get_size("levels", config.battery_levels);
        config.usage_levels =
            params.get_size("usage_levels", config.usage_levels);
        return std::make_unique<MdpBlhPolicy>(config);
      },
      {"mdp-dp"});

  registry.add(
      "none",
      [](const SpecParams& params) -> std::unique_ptr<BlhPolicy> {
        params.allow_only(kGeometryKeys, "policy 'none'");
        return std::make_unique<PassthroughPolicy>();
      },
      {"passthrough", "no-battery"});

  return registry;
}

const Registry<std::unique_ptr<BlhPolicy>>& policy_registry() {
  static const Registry<std::unique_ptr<BlhPolicy>> registry =
      build_registry();
  return registry;
}

}  // namespace

RlBlhConfig make_rlblh_config(const SpecParams& params) {
  params.allow_only(
      with_geometry({"alpha", "epsilon", "decay", "decay_by_episodes",
                     "alpha_floor", "epsilon_floor", "double_q",
                     "replay_random_start", "reuse", "reuse_days",
                     "reuse_repeats", "syn", "syn_period", "syn_last_day",
                     "syn_repeats", "stats_bins", "stats_reservoir"}),
      "policy 'rlblh'");
  RlBlhConfig config;
  config.intervals_per_day =
      params.get_size("intervals", config.intervals_per_day);
  config.decision_interval = params.get_size("nd", config.decision_interval);
  config.usage_cap = params.get_double("cap", config.usage_cap);
  config.battery_capacity =
      params.get_double("battery", config.battery_capacity);
  config.num_actions = params.get_size("actions", config.num_actions);
  config.alpha = params.get_double("alpha", config.alpha);
  config.epsilon = params.get_double("epsilon", config.epsilon);
  config.decay_hyperparams = params.get_bool("decay", config.decay_hyperparams);
  config.decay_by_episodes =
      params.get_bool("decay_by_episodes", config.decay_by_episodes);
  config.alpha_floor = params.get_double("alpha_floor", config.alpha_floor);
  config.epsilon_floor =
      params.get_double("epsilon_floor", config.epsilon_floor);
  config.double_q = params.get_bool("double_q", config.double_q);
  config.replay_random_start =
      params.get_bool("replay_random_start", config.replay_random_start);
  config.enable_reuse = params.get_bool("reuse", config.enable_reuse);
  config.reuse_days = params.get_size("reuse_days", config.reuse_days);
  config.reuse_repeats =
      params.get_size("reuse_repeats", config.reuse_repeats);
  config.enable_synthetic = params.get_bool("syn", config.enable_synthetic);
  config.synthetic_period =
      params.get_size("syn_period", config.synthetic_period);
  config.synthetic_last_day =
      params.get_size("syn_last_day", config.synthetic_last_day);
  config.synthetic_repeats =
      params.get_size("syn_repeats", config.synthetic_repeats);
  config.stats_bins = params.get_size("stats_bins", config.stats_bins);
  config.stats_reservoir =
      params.get_size("stats_reservoir", config.stats_reservoir);
  config.seed = params.get_u64("seed", config.seed);
  return config;
}

std::unique_ptr<BlhPolicy> make_policy(const std::string& name,
                                       const SpecParams& params) {
  return policy_registry().create(name, params);
}

std::vector<std::string> policy_names() {
  return policy_registry().names();
}

}  // namespace rlblh
