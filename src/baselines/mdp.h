// Quantized-state MDP baseline (after the paper's reference [9], Privatus).
//
// This is the class of scheme RL-BLH argues against in Section VIII: battery
// control computed by dynamic programming over a *quantized* state space,
// which (a) requires the usage distribution to be known in advance, and
// (b) has a decision table whose size grows with the quantization granularity
// and the number of time instances. We implement it over the same
// rectangular-pulse action space as RL-BLH so cost comparisons are
// apples-to-apples: state (k, quantized battery level), per-decision-interval
// usage-sum distribution P_k(z) estimated from training days, expected-reward
// backward induction. The complexity benchmark measures its table size and
// solve time against RL-BLH's 40-48 weights.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "core/policy.h"
#include "meter/trace.h"
#include "util/histogram.h"
#include "util/quantizer.h"

namespace rlblh {

/// Configuration of the MDP baseline.
struct MdpConfig {
  std::size_t intervals_per_day = 1440;  ///< n_M
  std::size_t decision_interval = 15;    ///< n_D
  double usage_cap = 0.08;               ///< x_M, kWh
  double battery_capacity = 5.0;         ///< b_M, kWh
  std::size_t num_actions = 8;           ///< a_M pulse magnitudes
  std::size_t battery_levels = 64;       ///< quantization of the battery level
  std::size_t usage_levels = 32;         ///< quantization of the usage sum Z_k

  /// k_M decision intervals per day.
  std::size_t decisions_per_day() const {
    return intervals_per_day / decision_interval;
  }

  /// Throws ConfigError on invalid parameters.
  void validate() const;
};

/// Dynamic-programming battery controller with a quantized decision table.
class MdpBlhPolicy final : public BlhPolicy {
 public:
  explicit MdpBlhPolicy(MdpConfig config);

  /// Feeds one training day into the usage model (must precede solve()).
  /// All training days must share one price schedule shape; the last one
  /// seen is used for the expected rewards.
  void observe_training_day(const DayTrace& usage, const TouSchedule& prices);

  /// Runs backward induction over the quantized state space. Requires at
  /// least one training day. May be called again after more observations.
  void solve();

  /// True once solve() has produced a decision table.
  bool solved() const { return solved_; }

  /// Number of states k_M * L_b in the table.
  std::size_t state_count() const;

  /// Number of (state, action) entries — the memory the scheme must hold.
  std::size_t table_entries() const;

  /// Expected daily savings of the solved policy, from the model's own
  /// value function at the given start level (cents).
  double expected_savings(double initial_level) const;

  // --- BlhPolicy (greedy table lookup; requires solved()) ----------------
  void begin_day(const TouSchedule& prices) override;
  double reading(std::size_t n, double battery_level) override;
  void observe_usage(std::size_t n, double usage) override;
  std::string_view name() const override { return "mdp-dp"; }

  // Pulse-block fast path: one table lookup per n_D-wide block.
  std::size_t pulse_width() const override {
    return config_.decision_interval;
  }
  double fill_block(std::size_t n0, std::size_t width,
                    double battery_level) override;
  void observe_block(std::size_t n0, ConstTraceLane usage) override;

  // Lane-native batch entry points (engine contract: every lane is an
  // MdpBlhPolicy). Draw-free table lookups, devirtualized per lane.
  void fill_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                  std::size_t width, const double* levels,
                  double* y_out) override;
  void observe_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                     const LaneBlock& usage) override;

  /// Configuration in effect.
  const MdpConfig& config() const { return config_; }

 private:
  /// Feasible pulse magnitudes at a battery level (same guard rule as
  /// RL-BLH so the comparison isolates the decision machinery).
  std::vector<std::size_t> allowed_actions(double battery_level) const;

  /// Reference to one of the three precomputed feasible sets; the acting
  /// hot path and the solver's inner loop use this to avoid allocating.
  const std::vector<std::size_t>& feasible(double battery_level) const;

  /// Flat index into the value/policy tables.
  std::size_t state_index(std::size_t k, std::size_t level_idx) const {
    return k * config_.battery_levels + level_idx;
  }

  MdpConfig config_;
  Quantizer battery_q_;
  Quantizer usage_sum_q_;

  // Training model: per decision interval k, the distribution of the usage
  // sum Z_k and the mean priced usage sum E[sum r_n x_n].
  std::vector<Histogram> usage_sum_hist_;
  std::vector<double> priced_usage_sum_;   // running mean per k
  std::vector<double> rate_sum_;           // sum of rates within k (last day)
  std::size_t training_days_ = 0;

  // Precomputed feasible-action sets (see feasible()).
  std::vector<std::size_t> actions_all_;
  std::vector<std::size_t> actions_zero_only_;
  std::vector<std::size_t> actions_max_only_;

  // Solved artifacts.
  bool solved_ = false;
  std::vector<double> value_;         // V(k, level)
  std::vector<std::size_t> policy_;   // greedy action per state

  // Acting state.
  std::size_t current_action_ = 0;
  bool day_open_ = false;
};

}  // namespace rlblh
