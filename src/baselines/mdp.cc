#include "baselines/mdp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace rlblh {

void MdpConfig::validate() const {
  RLBLH_REQUIRE(intervals_per_day >= 2, "MdpConfig: need >= 2 intervals");
  RLBLH_REQUIRE(decision_interval >= 1,
                "MdpConfig: decision interval must be >= 1");
  RLBLH_REQUIRE(intervals_per_day % decision_interval == 0,
                "MdpConfig: n_M must be a multiple of n_D");
  RLBLH_REQUIRE(usage_cap > 0.0, "MdpConfig: usage cap must be > 0");
  RLBLH_REQUIRE(battery_capacity > 0.0,
                "MdpConfig: battery capacity must be > 0");
  RLBLH_REQUIRE(num_actions >= 2, "MdpConfig: need >= 2 actions");
  RLBLH_REQUIRE(battery_levels >= 2, "MdpConfig: need >= 2 battery levels");
  RLBLH_REQUIRE(usage_levels >= 2, "MdpConfig: need >= 2 usage levels");
  const double guard =
      usage_cap * static_cast<double>(decision_interval);
  RLBLH_REQUIRE(battery_capacity >= 2.0 * guard,
                "MdpConfig: battery too small: b_M must be >= 2 * x_M * n_D");
}

namespace {
MdpConfig validated(MdpConfig config) {
  config.validate();
  return config;
}
}  // namespace

MdpBlhPolicy::MdpBlhPolicy(MdpConfig config)
    : config_(validated(config)),
      battery_q_(config_.battery_levels, 0.0, config_.battery_capacity),
      usage_sum_q_(config_.usage_levels, 0.0,
                   config_.usage_cap *
                       static_cast<double>(config_.decision_interval)),
      priced_usage_sum_(config_.decisions_per_day(), 0.0),
      rate_sum_(config_.decisions_per_day(), 0.0) {
  const double z_max =
      config_.usage_cap * static_cast<double>(config_.decision_interval);
  usage_sum_hist_.reserve(config_.decisions_per_day());
  for (std::size_t k = 0; k < config_.decisions_per_day(); ++k) {
    usage_sum_hist_.emplace_back(config_.usage_levels, 0.0, z_max);
  }
  actions_all_.resize(config_.num_actions);
  for (std::size_t a = 0; a < actions_all_.size(); ++a) actions_all_[a] = a;
  actions_zero_only_ = {0};
  actions_max_only_ = {config_.num_actions - 1};
}

void MdpBlhPolicy::observe_training_day(const DayTrace& usage,
                                        const TouSchedule& prices) {
  RLBLH_REQUIRE(usage.intervals() == config_.intervals_per_day,
                "MdpBlhPolicy: usage day length mismatch");
  RLBLH_REQUIRE(prices.intervals() == config_.intervals_per_day,
                "MdpBlhPolicy: price schedule length mismatch");
  const std::size_t n_d = config_.decision_interval;
  for (std::size_t k = 0; k < config_.decisions_per_day(); ++k) {
    double z = 0.0;
    double priced = 0.0;
    double rates = 0.0;
    for (std::size_t i = 0; i < n_d; ++i) {
      const std::size_t n = k * n_d + i;
      z += usage.at(n);
      priced += prices.rate(n) * usage.at(n);
      rates += prices.rate(n);
    }
    usage_sum_hist_[k].add(z);
    // Running mean of the priced usage sum across training days.
    const auto d = static_cast<double>(training_days_ + 1);
    priced_usage_sum_[k] += (priced - priced_usage_sum_[k]) / d;
    rate_sum_[k] = rates;
  }
  ++training_days_;
}

const std::vector<std::size_t>& MdpBlhPolicy::feasible(
    double battery_level) const {
  const double guard =
      config_.usage_cap * static_cast<double>(config_.decision_interval);
  if (battery_level > config_.battery_capacity - guard) {
    return actions_zero_only_;
  }
  if (battery_level < guard) return actions_max_only_;
  return actions_all_;
}

std::vector<std::size_t> MdpBlhPolicy::allowed_actions(
    double battery_level) const {
  return feasible(battery_level);
}

void MdpBlhPolicy::solve() {
  RLBLH_REQUIRE(training_days_ >= 1,
                "MdpBlhPolicy: observe at least one training day first");
  const std::size_t k_max = config_.decisions_per_day();
  const std::size_t levels = config_.battery_levels;
  const std::size_t actions = config_.num_actions;
  const double n_d = static_cast<double>(config_.decision_interval);

  value_.assign((k_max + 1) * levels, 0.0);
  policy_.assign(k_max * levels, 0);

  // Backward induction: V(k_M, .) = 0 (paper Eq. 10).
  for (std::size_t k = k_max; k-- > 0;) {
    const Histogram& dist = usage_sum_hist_[k];
    for (std::size_t li = 0; li < levels; ++li) {
      const double level = battery_q_.value(li);
      const auto& allowed = feasible(level);
      double best = -std::numeric_limits<double>::infinity();
      std::size_t best_action = allowed.front();
      for (const std::size_t a : allowed) {
        const double magnitude =
            static_cast<double>(a) * config_.usage_cap /
            static_cast<double>(actions - 1);
        // Expected reward: E[sum r_n x_n] - magnitude * sum r_n (Eq. 7).
        double q = priced_usage_sum_[k] - magnitude * rate_sum_[k];
        // Expected continuation over the quantized usage-sum distribution.
        for (std::size_t zi = 0; zi < config_.usage_levels; ++zi) {
          const double p = dist.probability(zi);
          if (p <= 0.0) continue;
          const double z = usage_sum_q_.value(zi);
          const double next_level =
              std::clamp(level + magnitude * n_d - z, 0.0,
                         config_.battery_capacity);
          q += p * value_[(k + 1) * levels + battery_q_.index(next_level)];
        }
        if (q > best) {
          best = q;
          best_action = a;
        }
      }
      value_[k * levels + li] = best;
      policy_[state_index(k, li)] = best_action;
    }
  }
  solved_ = true;
}

std::size_t MdpBlhPolicy::state_count() const {
  return config_.decisions_per_day() * config_.battery_levels;
}

std::size_t MdpBlhPolicy::table_entries() const {
  return state_count() * config_.num_actions;
}

double MdpBlhPolicy::expected_savings(double initial_level) const {
  RLBLH_REQUIRE(solved_, "MdpBlhPolicy: solve() first");
  return value_[battery_q_.index(
      std::clamp(initial_level, 0.0, config_.battery_capacity))];
}

void MdpBlhPolicy::begin_day(const TouSchedule& prices) {
  RLBLH_REQUIRE(solved_, "MdpBlhPolicy: solve() before acting");
  RLBLH_REQUIRE(prices.intervals() == config_.intervals_per_day,
                "MdpBlhPolicy: price schedule length mismatch");
  RLBLH_REQUIRE(!day_open_, "MdpBlhPolicy: previous day not ended");
  day_open_ = true;
  current_action_ = 0;
}

double MdpBlhPolicy::reading(std::size_t n, double battery_level) {
  RLBLH_REQUIRE(day_open_, "MdpBlhPolicy: reading() before begin_day()");
  RLBLH_REQUIRE(n < config_.intervals_per_day,
                "MdpBlhPolicy: interval out of range");
  if (n % config_.decision_interval == 0) {
    const std::size_t k = n / config_.decision_interval;
    // The stored greedy action may be infeasible at the *exact* (continuous)
    // level because the table was built on quantized levels; re-check.
    const auto& allowed = feasible(battery_level);
    const std::size_t table_action =
        policy_[state_index(k, battery_q_.index(std::clamp(
                                   battery_level, 0.0,
                                   config_.battery_capacity)))];
    current_action_ = table_action;
    if (std::find(allowed.begin(), allowed.end(), table_action) ==
        allowed.end()) {
      current_action_ = allowed.front();
    }
  }
  return static_cast<double>(current_action_) * config_.usage_cap /
         static_cast<double>(config_.num_actions - 1);
}

double MdpBlhPolicy::fill_block(std::size_t n0, std::size_t width,
                                double battery_level) {
  RLBLH_REQUIRE(day_open_, "MdpBlhPolicy: fill_block() before begin_day()");
  RLBLH_REQUIRE(n0 < config_.intervals_per_day &&
                    n0 + width <= config_.intervals_per_day,
                "MdpBlhPolicy: block out of range");
  RLBLH_REQUIRE(n0 % config_.decision_interval == 0,
                "MdpBlhPolicy: block must start on a decision boundary");
  const std::size_t k = n0 / config_.decision_interval;
  // Same table lookup + feasibility re-check as the boundary branch of
  // reading(), made once per block.
  const auto& allowed = feasible(battery_level);
  const std::size_t table_action =
      policy_[state_index(k, battery_q_.index(std::clamp(
                                 battery_level, 0.0,
                                 config_.battery_capacity)))];
  current_action_ = table_action;
  if (std::find(allowed.begin(), allowed.end(), table_action) ==
      allowed.end()) {
    current_action_ = allowed.front();
  }
  return static_cast<double>(current_action_) * config_.usage_cap /
         static_cast<double>(config_.num_actions - 1);
}

void MdpBlhPolicy::observe_usage(std::size_t n, double usage) {
  RLBLH_REQUIRE(day_open_, "MdpBlhPolicy: observe before begin_day()");
  RLBLH_REQUIRE(n < config_.intervals_per_day && usage >= 0.0,
                "MdpBlhPolicy: bad observation");
  if (n + 1 == config_.intervals_per_day) day_open_ = false;
}

void MdpBlhPolicy::observe_block(std::size_t n0, ConstTraceLane usage) {
  RLBLH_REQUIRE(day_open_, "MdpBlhPolicy: observe before begin_day()");
  RLBLH_REQUIRE(n0 + usage.size() <= config_.intervals_per_day,
                "MdpBlhPolicy: block out of range");
  for (std::size_t i = 0; i < usage.size(); ++i) {
    RLBLH_REQUIRE(usage[i] >= 0.0, "MdpBlhPolicy: bad observation");
  }
  if (n0 + usage.size() == config_.intervals_per_day) day_open_ = false;
}

void MdpBlhPolicy::fill_lanes(std::span<BlhPolicy* const> lanes,
                              std::size_t n0, std::size_t width,
                              const double* levels, double* y_out) {
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    // Devirtualized per lane (the class is final); the lookup is draw-free
    // so lane order carries no RNG obligation.
    y_out[k] = static_cast<MdpBlhPolicy&>(*lanes[k])
                   .fill_block(n0, width, levels[k]);
  }
}

void MdpBlhPolicy::observe_lanes(std::span<BlhPolicy* const> lanes,
                                 std::size_t n0, const LaneBlock& usage) {
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    static_cast<MdpBlhPolicy&>(*lanes[k]).observe_block(n0, usage.lane(k));
  }
}

}  // namespace rlblh
