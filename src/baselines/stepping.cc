#include "baselines/stepping.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rlblh {

void SteppingConfig::validate() const {
  RLBLH_REQUIRE(intervals_per_day >= 1,
                "SteppingConfig: need at least one interval");
  RLBLH_REQUIRE(usage_cap > 0.0, "SteppingConfig: usage cap must be > 0");
  RLBLH_REQUIRE(battery_capacity > 0.0,
                "SteppingConfig: battery capacity must be > 0");
  RLBLH_REQUIRE(step > 0.0 && step <= usage_cap,
                "SteppingConfig: step must be in (0, x_M]");
  RLBLH_REQUIRE(margin_fraction > 0.0 && margin_fraction < 0.5,
                "SteppingConfig: margin fraction must be in (0, 0.5)");
}

namespace {
SteppingConfig validated(SteppingConfig config) {
  config.validate();
  return config;
}
}  // namespace

SteppingPolicy::SteppingPolicy(SteppingConfig config)
    : config_(validated(config)),
      max_level_(static_cast<std::size_t>(
          std::ceil(config_.usage_cap / config_.step))),
      level_(max_level_ / 2),
      recent_usage_(config_.usage_cap / 4.0) {}

void SteppingPolicy::begin_day(const TouSchedule& prices) {
  RLBLH_REQUIRE(prices.intervals() == config_.intervals_per_day,
                "SteppingPolicy: price schedule length mismatch");
}

double SteppingPolicy::reading(std::size_t n, double battery_level) {
  RLBLH_REQUIRE(n < config_.intervals_per_day,
                "SteppingPolicy: interval out of range");
  const double margin = config_.margin_fraction * config_.battery_capacity;
  const double high = config_.battery_capacity - margin;
  const double low = margin;
  if (battery_level > high || battery_level < low) {
    // The battery left its comfort band: re-seed the step at the quantized
    // recent demand, biased one step down (full) or up (empty) so the band
    // is re-entered. This is the event that leaks load information.
    const auto base = static_cast<std::size_t>(
        std::min(std::round(recent_usage_ / config_.step),
                 static_cast<double>(max_level_)));
    std::size_t next = base;
    if (battery_level > high) {
      next = base > 0 ? base - 1 : 0;
    } else {
      next = std::min(base + 1, max_level_);
    }
    if (next != level_) {
      level_ = next;
      ++changes_;
    }
  }
  return std::min(static_cast<double>(level_) * config_.step,
                  config_.usage_cap);
}

void SteppingPolicy::observe_usage(std::size_t n, double usage) {
  RLBLH_REQUIRE(n < config_.intervals_per_day,
                "SteppingPolicy: interval out of range");
  RLBLH_REQUIRE(usage >= 0.0, "SteppingPolicy: usage must be >= 0");
  recent_usage_ += 0.01 * (usage - recent_usage_);
  recent_usage_ = std::clamp(recent_usage_, 0.0, config_.usage_cap);
}

}  // namespace rlblh
