// Decorrelated-jitter reconnect backoff.
//
// A fleet of load_gen clients that loses its daemon must not reconnect in
// lockstep: with plain exponential backoff every client that disconnected
// together retries together, and the thundering herd re-kills the daemon it
// is trying to reach. The decorrelated-jitter scheme (AWS architecture
// blog; see also the jittered backoff in SNIPPETS.md) draws each sleep
// uniformly from [base, 3 * previous_sleep], clipped to a cap — successive
// delays decorrelate across clients even when their failures were
// simultaneous, while still backing off geometrically in expectation.
#pragma once

#include <algorithm>
#include <chrono>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh::serve {

/// Per-connection backoff state. Not thread-safe; one instance per client.
class DecorrelatedJitterBackoff {
 public:
  /// `base` is both the minimum sleep and the first sleep's lower bound;
  /// `cap` bounds every sleep. Requires 0 < base <= cap.
  DecorrelatedJitterBackoff(std::chrono::milliseconds base,
                            std::chrono::milliseconds cap, Rng rng)
      : base_(base), cap_(cap), prev_(base), rng_(std::move(rng)) {
    RLBLH_REQUIRE(base.count() > 0 && base <= cap,
                  "DecorrelatedJitterBackoff: need 0 < base <= cap");
  }

  /// Next sleep: uniform in [base, min(cap, 3 * previous)], remembered as
  /// the new previous.
  std::chrono::milliseconds next() {
    const double lo = static_cast<double>(base_.count());
    const double hi = std::min(static_cast<double>(cap_.count()),
                               3.0 * static_cast<double>(prev_.count()));
    const double sleep = rng_.uniform(lo, std::max(lo, hi));
    prev_ = std::chrono::milliseconds(static_cast<long long>(sleep));
    prev_ = std::clamp(prev_, base_, cap_);
    return prev_;
  }

  /// Call after a successful connection: the next failure starts over from
  /// the base delay.
  void reset() { prev_ = base_; }

  std::chrono::milliseconds base() const { return base_; }
  std::chrono::milliseconds cap() const { return cap_; }

 private:
  std::chrono::milliseconds base_;
  std::chrono::milliseconds cap_;
  std::chrono::milliseconds prev_;
  Rng rng_;
};

}  // namespace rlblh::serve
