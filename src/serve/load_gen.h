// Load generator for rlblh_serve: the client half of the serving story.
//
// run_load drives N simulated households against a daemon endpoint. Each
// household's usage comes from its own deterministic TraceSource (the same
// registries a batch run uses), so the daemon-side trajectory is a pure
// function of (base_spec, seed_base, household index) — which is what makes
// kill/restart testing possible: after any interruption the generator can
// regenerate precisely the days the daemon still needs and replay them.
//
// Transport loss is handled in the loop, not by the caller: reconnect with
// decorrelated-jitter backoff, re-Hello, resume from the server's cursor
// (completed days + open-day interval), replay the remainder. A daemon that
// is SIGKILLed and restarted mid-run therefore only costs the generator a
// replay of the unacknowledged tail.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rlblh::serve {

struct LoadGenConfig {
  std::string endpoint;                    ///< unix:PATH or tcp:PORT
  std::string base_spec = "policy=rlblh";  ///< per-household seed appended
  std::size_t households = 10;
  std::size_t days = 2;            ///< target days_completed per household
  std::size_t batch_intervals = 240;  ///< readings per frame
  std::uint64_t seed_base = 1;     ///< household h runs with seed_base + h
  std::size_t threads = 1;         ///< client threads (connections)
  bool final_checkpoint = true;    ///< request a Checkpoint after last day
  std::size_t connect_attempts = 30;  ///< per (re)connect, with backoff
};

struct LoadGenResult {
  std::size_t households = 0;
  std::size_t days_completed = 0;   ///< sum over households (this run)
  std::size_t intervals_sent = 0;
  std::size_t frames_sent = 0;
  std::size_t reconnects = 0;
  std::size_t draining_waits = 0;  ///< jittered sleeps on kDraining replies
  double wall_seconds = 0.0;
  std::vector<double> rtt_us;  ///< per-Readings-frame round-trip times

  /// p-quantile of rtt_us (nearest-rank); 0 when empty.
  double rtt_quantile(double q) const;
};

/// Spec string household `h` runs under (base spec + derived seed).
std::string household_spec(const LoadGenConfig& config, std::size_t h);

/// Drives the full load; throws DataError when the daemon stays
/// unreachable past the backoff budget.
LoadGenResult run_load(const LoadGenConfig& config);

}  // namespace rlblh::serve
