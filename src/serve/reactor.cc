#include "serve/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "obs/obs.h"
#include "serve/net.h"
#include "util/error.h"

namespace rlblh::serve {

namespace {
/// Receive buffer shared by every read_ready call (one reactor thread).
constexpr std::size_t kRecvChunk = 64 * 1024;
constexpr int kMaxEvents = 256;
}  // namespace

Reactor::Reactor(Config config) : config_(std::move(config)) {}

Reactor::~Reactor() {
  stop();
  if (epoll_fd_ >= 0) close_quietly(epoll_fd_);
  if (wake_fd_ >= 0) close_quietly(wake_fd_);
}

void Reactor::start() {
  RLBLH_REQUIRE(epoll_fd_ < 0, "serve reactor: start() called twice");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw DataError("serve reactor: epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw DataError("serve reactor: eventfd failed");
  set_nonblocking(config_.listen_fd);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = config_.listen_fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, config_.listen_fd, &ev) < 0) {
    throw DataError("serve reactor: cannot watch the listen socket");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw DataError("serve reactor: cannot watch the wake eventfd");
  }
  thread_ = std::thread([this] { loop(); });
}

void Reactor::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::stop() {
  stop_.store(true);
  wake();
  if (thread_.joinable()) thread_.join();
}

void Reactor::shutdown_conns() {
  shutdown_requested_.store(true);
  wake();
}

void Reactor::loop() {
  std::vector<epoll_event> events(kMaxEvents);
  while (!stop_.load()) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(), kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (shutdown_requested_.exchange(false)) {
      // Drain request: blocked peers see EOF, the loop reaps the closes.
      for (auto& [fd, conn] : conns_) ::shutdown(fd, SHUT_RDWR);
    }
    if (stop_.load()) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == config_.listen_fd) {
        accept_ready();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this wake batch
      std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) write_ready(conn);
      if ((events[i].events & EPOLLIN) != 0) read_ready(conn);
    }
  }
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->dead = true;
    close_quietly(fd);
  }
  conns_.clear();
  live_.store(0);
}

void Reactor::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(config_.listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or transient error: wait for the next wake
    if ((config_.draining != nullptr && config_.draining->load()) ||
        (config_.max_connections != 0 &&
         live_.load() >= config_.max_connections)) {
      if (config_.connections_rejected != nullptr) {
        config_.connections_rejected->fetch_add(1);
      }
      close_quietly(fd);
      continue;
    }
    auto conn = std::make_shared<Conn>(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close_quietly(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    live_.fetch_add(1);
    if (config_.connections_accepted != nullptr) {
      config_.connections_accepted->fetch_add(1);
    }
    RLBLH_OBS_COUNT("serve.connections", 1);
  }
}

void Reactor::read_ready(const std::shared_ptr<Conn>& conn) {
  static thread_local std::vector<std::uint8_t> chunk(kRecvChunk);
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk.data(), chunk.size(), 0);
    if (n == 0) {  // orderly close
      close_conn(conn);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);
      return;
    }
    conn->reader.append(chunk.data(), static_cast<std::size_t>(n));
    try {
      std::vector<std::uint8_t> payload;
      while (conn->reader.take(payload)) {
        config_.deliver(conn, std::move(payload));
        payload = {};
      }
    } catch (const DataError&) {
      // Length prefix over the limit: framing is lost, drop the peer after
      // telling it why — the thread-per-connection path's exact behavior.
      if (config_.malformed_frames != nullptr) {
        config_.malformed_frames->fetch_add(1);
      }
      RLBLH_OBS_COUNT("serve.malformed_frames", 1);
      std::vector<std::uint8_t> out;
      encode_error(out,
                   {ErrorCode::kMalformedFrame, "unrecoverable framing error"});
      send(conn, out.data(), out.size());
      bool flushed;
      {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        flushed = conn->outbuf.empty();
        conn->close_after_flush = true;
      }
      if (flushed) close_conn(conn);
      return;
    }
    if (static_cast<std::size_t>(n) < chunk.size()) break;
  }
}

void Reactor::write_ready(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->dead) return;
    std::size_t sent = 0;
    while (sent < conn->outbuf.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->outbuf.data() + sent,
                 conn->outbuf.size() - sent, MSG_DONTWAIT | MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN keeps EPOLLOUT armed; hard errors surface as events
      }
      sent += static_cast<std::size_t>(n);
    }
    conn->outbuf.erase(conn->outbuf.begin(),
                       conn->outbuf.begin() + static_cast<long>(sent));
    if (conn->outbuf.empty() && conn->want_write) {
      conn->want_write = false;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      close_now = conn->close_after_flush;
    }
  }
  if (close_now) close_conn(conn);
}

void Reactor::send(const std::shared_ptr<Conn>& conn, const std::uint8_t* data,
                   std::size_t size) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->dead || conn->close_after_flush) return;
  std::size_t sent = 0;
  if (conn->outbuf.empty()) {
    // Fast path: the socket usually swallows a reply whole.
    while (sent < size) {
      const ssize_t n = ::send(conn->fd, data + sent, size - sent,
                               MSG_DONTWAIT | MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return;  // peer is gone; the reactor reaps it via EPOLLERR/HUP
      }
      sent += static_cast<std::size_t>(n);
    }
    if (sent == size) return;
  }
  conn->outbuf.insert(conn->outbuf.end(), data + sent, data + size);
  if (!conn->want_write) {
    conn->want_write = true;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void Reactor::close_conn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->dead) return;
    conn->dead = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close_quietly(conn->fd);
  conns_.erase(conn->fd);
  live_.fetch_sub(1);
}

}  // namespace rlblh::serve
