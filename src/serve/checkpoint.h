// Durable per-household checkpoints for rlblh_serve.
//
// One text file per household under a directory the daemon owns. Writes are
// atomic-by-rename: the state is serialized to `<file>.tmp` and renamed
// over the live file, so a crash mid-write leaves the previous checkpoint
// intact — a reader never observes a torn file. Restart therefore resumes
// from the newest complete day-boundary snapshot, which is exactly the
// guarantee the bitwise-resume argument (DESIGN.md §15) needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/session.h"

namespace rlblh::serve {

class CheckpointStore {
 public:
  /// Opens (creating if needed) the checkpoint directory. Throws DataError
  /// when the directory cannot be created.
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Path of household `id`'s checkpoint file.
  std::string path_for(std::uint64_t id) const;

  /// True when a checkpoint for `id` exists.
  bool exists(std::uint64_t id) const;

  /// Atomically persists the session (tmp + rename). Throws ConfigError
  /// while the session's day is open, DataError on I/O failure.
  void save(const HouseholdSession& session) const;

  /// Loads household `id`'s checkpoint. Throws DataError when missing or
  /// malformed.
  std::unique_ptr<HouseholdSession> load(std::uint64_t id) const;

  /// Ids of every checkpoint file present (for drain logging and tests).
  std::vector<std::uint64_t> list() const;

 private:
  std::string dir_;
};

}  // namespace rlblh::serve
