// Minimal POSIX socket plumbing shared by the daemon and its clients.
//
// Endpoints are strings so CLIs and configs stay uniform:
//
//     unix:/path/to/socket       AF_UNIX stream socket
//     tcp:PORT                   IPv4 loopback on the given port (0 = pick)
//
// Unix-domain sockets are the deployment default (one daemon per meter
// gateway, clients on-box); TCP exists for cross-host load generation. All
// helpers throw DataError on failure — callers translate to protocol
// errors or retries as appropriate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rlblh::serve {

/// Binds + listens on the endpoint. For tcp:0 an ephemeral port is chosen;
/// `actual` (when non-null) receives the resolved endpoint string either
/// way. Returns the listening fd (caller owns/closes). For unix: endpoints
/// a stale socket file from a dead daemon is unlinked first.
int listen_endpoint(const std::string& endpoint, std::string* actual);

/// Connects to the endpoint. Returns the connected fd (caller owns).
int connect_endpoint(const std::string& endpoint);

/// Writes the whole buffer, retrying on short writes/EINTR. Throws
/// DataError when the peer is gone.
void send_all(int fd, const std::uint8_t* data, std::size_t size);

/// Reads up to `size` bytes. Returns 0 on orderly peer close; retries
/// EINTR. Throws DataError on hard errors.
std::size_t recv_some(int fd, std::uint8_t* data, std::size_t size);

/// Closes an fd, ignoring errors (shutdown paths).
void close_quietly(int fd);

/// Puts the fd into non-blocking mode (event-loop sockets). Throws
/// DataError on failure.
void set_nonblocking(int fd);

/// Raises the soft RLIMIT_NOFILE to the hard limit (best effort, never
/// throws) and returns the resulting soft limit. The event-loop server and
/// the connection-sweep bench hold thousands of sockets; the usual soft
/// default of 1024 is the only thing in the way.
std::size_t raise_fd_limit();

/// Removes the socket file of a unix: endpoint (no-op for tcp:).
void unlink_endpoint(const std::string& endpoint);

}  // namespace rlblh::serve
