#include "serve/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/error.h"

namespace rlblh::serve {

namespace fs = std::filesystem;

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw DataError("checkpoint store: cannot create directory '" + dir_ +
                    "': " + ec.message());
  }
  // Hygiene: a crash between serializing `<file>.tmp` and the rename leaves
  // the tmp file orphaned forever (the next save writes a fresh one). Sweep
  // them on open — the committed `.ckpt` files are the durable state and
  // are never touched.
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      std::error_code remove_ec;
      fs::remove(it->path(), remove_ec);
    }
  }
}

std::string CheckpointStore::path_for(std::uint64_t id) const {
  return dir_ + "/h" + std::to_string(id) + ".ckpt";
}

bool CheckpointStore::exists(std::uint64_t id) const {
  std::error_code ec;
  return fs::exists(path_for(id), ec);
}

void CheckpointStore::save(const HouseholdSession& session) const {
  const std::string final_path = path_for(session.id());
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      throw DataError("checkpoint store: cannot open '" + tmp_path +
                      "' for write");
    }
    session.save(out);
    out.flush();
    if (!out) {
      throw DataError("checkpoint store: write to '" + tmp_path + "' failed");
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    throw DataError("checkpoint store: rename to '" + final_path +
                    "' failed: " + ec.message());
  }
}

std::unique_ptr<HouseholdSession> CheckpointStore::load(
    std::uint64_t id) const {
  std::ifstream in(path_for(id));
  if (!in) {
    throw DataError("checkpoint store: cannot open '" + path_for(id) + "'");
  }
  return HouseholdSession::restore(in);
}

std::vector<std::uint64_t> CheckpointStore::list() const {
  std::vector<std::uint64_t> ids;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() > 6 && name.front() == 'h' &&
        name.substr(name.size() - 5) == ".ckpt") {
      try {
        ids.push_back(std::stoull(name.substr(1, name.size() - 6)));
      } catch (...) {
        // Foreign file in the checkpoint directory; ignore.
      }
    }
  }
  return ids;
}

}  // namespace rlblh::serve
