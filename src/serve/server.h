// The rlblh_serve daemon core (DESIGN.md §15).
//
// ServeServer accepts connections on one endpoint, speaks the
// serve/protocol.h frame protocol, and drives one HouseholdSession per
// household id. Threading model: one accept thread plus one thread per
// connection — at metering cadence (an interval per simulated minute,
// batched per frame) each connection is idle almost always, so
// thread-per-connection is simpler and fast enough by orders of magnitude
// (the bench measures ~100k+ intervals/s/core end to end).
//
// Durability: every completed day whose index hits the checkpoint period is
// persisted through CheckpointStore before the ack for the closing frame is
// sent, so an acked day_completed=1 is on disk. A SIGKILL between acks
// loses at most the open (unacked) day, which the client replays on
// reconnect — the kill/restart differential test asserts the resumed
// trajectory is bitwise-identical to an uninterrupted one.
//
// stop() is the SIGTERM path: stop accepting, wake every connection, let
// in-flight frames finish, checkpoint every household with unsaved
// completed days, then return. abort_without_checkpoint() simulates a crash
// for tests (sockets die, nothing new is written).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/checkpoint.h"
#include "serve/session.h"

namespace rlblh::serve {

struct ServeConfig {
  std::string listen = "tcp:0";     ///< unix:PATH or tcp:PORT (0 = pick)
  std::string checkpoint_dir;       ///< required; created when missing
  std::size_t checkpoint_period_days = 1;  ///< persist every Nth day close
};

class ServeServer {
 public:
  explicit ServeServer(ServeConfig config);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds + listens and spawns the accept loop. Throws DataError when the
  /// endpoint cannot be bound.
  void start();

  /// Graceful drain (idempotent): see file comment.
  void stop();

  /// Crash simulation for restart tests: tears the sockets down and joins
  /// the threads WITHOUT the drain checkpoint pass, so on-disk state is
  /// exactly what the periodic checkpointing had already written.
  void abort_without_checkpoint();

  /// Resolved endpoint (e.g. "tcp:41732" after tcp:0). Valid after start().
  const std::string& endpoint() const { return endpoint_; }

  /// Live household count.
  std::size_t household_count() const;

  /// Counters for tests and the drain log line.
  std::size_t connections_accepted() const { return connections_.load(); }
  std::size_t malformed_frames() const { return malformed_.load(); }
  std::size_t days_completed() const { return days_completed_.load(); }
  std::size_t checkpoints_written() const { return checkpoints_.load(); }

 private:
  struct Entry {
    std::mutex mu;
    std::unique_ptr<HouseholdSession> session;
    std::size_t checkpointed_days = 0;  ///< days covered by the newest save
  };

  void accept_loop();
  void connection_loop(int fd);
  /// Handles one decoded frame; appends response frames to `out`.
  void handle_frame(const std::uint8_t* payload, std::size_t size,
                    std::vector<std::uint8_t>& out);
  Entry* find_entry(std::uint64_t id);
  void shutdown_sockets();
  void join_threads();

  ServeConfig config_;
  CheckpointStore store_;
  std::string endpoint_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< self-pipe waking the accept loop

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::thread accept_thread_;
  mutable std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;

  mutable std::mutex sessions_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> sessions_;

  std::atomic<std::size_t> connections_{0};
  std::atomic<std::size_t> malformed_{0};
  std::atomic<std::size_t> days_completed_{0};
  std::atomic<std::size_t> checkpoints_{0};
};

}  // namespace rlblh::serve
