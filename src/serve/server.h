// The rlblh_serve daemon core (DESIGN.md §15).
//
// ServeServer accepts connections on one endpoint, speaks the
// serve/protocol.h frame protocol, and drives one HouseholdSession per
// household id. Two threading models share every byte of protocol and
// session behavior:
//
//   kEventLoop (default): one epoll reactor thread owns all sockets
//   (serve/reactor.h) and hands decoded frames to session-sharded workers
//   (serve/shard.h) — households hash to a fixed shard, per-session state
//   is single-writer, and day-complete co-resident same-blueprint
//   households step through BatchEngine lanes. Scales to tens of
//   thousands of connections.
//
//   kThreadPerConn: the PR 8 model — one blocking thread per connection,
//   kept for one release so the smoke job can byte-compare the two modes'
//   checkpoints and acks (they must be identical, and are).
//
// Durability: every completed day whose index hits the checkpoint period is
// persisted through CheckpointStore before the ack for the closing frame is
// sent, so an acked day_completed=1 is on disk. A SIGKILL between acks
// loses at most the open (unacked) day, which the client replays on
// reconnect — the kill/restart differential test asserts the resumed
// trajectory is bitwise-identical to an uninterrupted one.
//
// stop() is the SIGTERM path: stop accepting, wake every connection, let
// in-flight frames finish, checkpoint every household with unsaved
// completed days, then return. abort_without_checkpoint() simulates a crash
// for tests (sockets die, nothing new is written).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/checkpoint.h"
#include "serve/reactor.h"
#include "serve/session.h"
#include "serve/shard.h"

namespace rlblh::serve {

enum class ThreadingMode {
  kEventLoop,      ///< epoll reactor + session shards (default)
  kThreadPerConn,  ///< one blocking thread per connection (compat)
};

struct ServeConfig {
  std::string listen = "tcp:0";     ///< unix:PATH or tcp:PORT (0 = pick)
  std::string checkpoint_dir;       ///< required; created when missing
  std::size_t checkpoint_period_days = 1;  ///< persist every Nth day close
  ThreadingMode threading = ThreadingMode::kEventLoop;
  std::size_t shards = 0;       ///< session shards; 0 = auto (event loop)
  std::size_t batch_width = 32; ///< max BatchEngine lanes per staged day;
                                ///< < 2 disables server-side batch stepping
  std::size_t max_connections = 0;  ///< 0 = mode default (event loop 65536,
                                    ///< thread-per-conn 256)
};

class ServeServer {
 public:
  explicit ServeServer(ServeConfig config);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds + listens and spawns the serving threads. Throws DataError when
  /// the endpoint cannot be bound.
  void start();

  /// Graceful drain (idempotent): see file comment.
  void stop();

  /// Crash simulation for restart tests: tears the sockets down and joins
  /// the threads WITHOUT the drain checkpoint pass, so on-disk state is
  /// exactly what the periodic checkpointing had already written.
  void abort_without_checkpoint();

  /// Resolved endpoint (e.g. "tcp:41732" after tcp:0). Valid after start().
  const std::string& endpoint() const { return endpoint_; }

  /// Live household count.
  std::size_t household_count() const;

  /// Counters for tests and the drain log line.
  std::size_t connections_accepted() const { return connections_.load(); }
  std::size_t connections_rejected() const { return rejected_.load(); }
  std::size_t malformed_frames() const { return malformed_.load(); }
  std::size_t days_completed() const { return days_completed_.load(); }
  std::size_t checkpoints_written() const { return checkpoints_.load(); }
  /// Day closes stepped as BatchEngine lanes (0 in thread-per-conn mode).
  std::size_t batch_days_completed() const { return batch_days_.load(); }

  /// The effective connection admission cap for this config.
  std::size_t effective_max_connections() const;

 private:
  struct Entry {
    std::mutex mu;
    std::unique_ptr<HouseholdSession> session;
    std::size_t checkpointed_days = 0;  ///< days covered by the newest save
  };

  void accept_loop();
  void connection_loop(int fd);
  /// Handles one decoded frame; appends response frames to `out`.
  void handle_frame(const std::uint8_t* payload, std::size_t size,
                    std::vector<std::uint8_t>& out);
  Entry* find_entry(std::uint64_t id);
  void shutdown_sockets();
  void join_threads();
  void start_event_loop();
  void route_payload(std::shared_ptr<Conn> conn,
                     std::vector<std::uint8_t>&& payload);

  ServeConfig config_;
  CheckpointStore store_;
  std::string endpoint_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< self-pipe waking the accept loop

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  // --- thread-per-conn state -------------------------------------------
  std::thread accept_thread_;
  mutable std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::atomic<std::size_t> live_conns_{0};

  mutable std::mutex sessions_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> sessions_;

  // --- event-loop state -------------------------------------------------
  std::unique_ptr<Reactor> reactor_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::size_t> connections_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> malformed_{0};
  std::atomic<std::size_t> days_completed_{0};
  std::atomic<std::size_t> checkpoints_{0};
  std::atomic<std::size_t> batch_days_{0};
};

}  // namespace rlblh::serve
