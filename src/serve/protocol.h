// Wire protocol for rlblh_serve.
//
// Frames are length-prefixed little-endian binary:
//
//     u32 payload_length          (excludes the prefix itself)
//     u8  version                 (kProtocolVersion)
//     u8  type                    (MessageType)
//     ... type-specific body, LE integers, IEEE-754 LE doubles
//
// The length prefix is capped (kMaxFrameBytes) so a corrupt or hostile
// prefix cannot make the daemon allocate unbounded memory; a bad version,
// unknown type, truncated body or trailing bytes all raise DataError at
// decode time, and the daemon answers with an Error frame instead of
// dying. Encoding/decoding is pure buffer manipulation — no sockets here —
// so the whole protocol is unit-testable without I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rlblh::serve {

inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard ceiling on a frame's payload. Generous: the largest legitimate
/// frame (a full day of readings, or a Hello carrying a spec string) is a
/// few KiB.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class MessageType : std::uint8_t {
  kHello = 1,          ///< client -> server: household id + scenario spec
  kHelloAck = 2,       ///< server -> client: resume point
  kReadings = 3,       ///< client -> server: a run of usage values
  kReadingsAck = 4,    ///< server -> client: cursor + running totals
  kCheckpoint = 5,     ///< client -> server: flush my state now
  kCheckpointAck = 6,  ///< server -> client: checkpointed day
  kStats = 7,          ///< client -> server: report state
  kStatsAck = 8,       ///< server -> client: totals + battery level
  kError = 9,          ///< server -> client: request rejected
  kBye = 10,           ///< client -> server: graceful close
  kByeAck = 11,        ///< server -> client: close acknowledged
};

/// Error codes carried by kError frames.
enum class ErrorCode : std::uint16_t {
  kMalformedFrame = 1,   ///< undecodable or wrong-version frame
  kBadSpec = 2,          ///< Hello spec rejected (parse/build failure)
  kUnknownHousehold = 3, ///< message for an id that never said Hello
  kOutOfOrder = 4,       ///< readings cursor does not match the session
  kNotCheckpointable = 5,///< policy does not support checkpoint/restore
  kDraining = 6,         ///< server is shutting down; reconnect later
  kInternal = 7,         ///< unexpected server-side failure
};

struct HelloMsg {
  std::uint64_t household_id = 0;
  std::string spec;  ///< ScenarioSpec grammar, e.g. "policy=rlblh;seed=7"
};

struct HelloAckMsg {
  std::uint64_t household_id = 0;
  std::uint32_t days_completed = 0;  ///< resume point: replay from this day
  std::uint32_t next_interval = 0;   ///< cursor within an open day, else 0
  std::uint8_t day_open = 0;  ///< 1 when the session kept a mid-day cursor
  std::uint8_t resumed = 0;   ///< 1 when state came from a checkpoint
};

struct ReadingsMsg {
  std::uint64_t household_id = 0;
  std::uint32_t day = 0;             ///< 0-based day index
  std::uint32_t first_interval = 0;  ///< 0-based interval of values[0]
  std::vector<double> values;        ///< usage kWh per interval, in order
};

struct ReadingsAckMsg {
  std::uint64_t household_id = 0;
  std::uint32_t day = 0;            ///< day of the session cursor
  std::uint32_t next_interval = 0;  ///< interval the server expects next
  std::uint8_t day_completed = 0;   ///< 1 when this frame closed a day
};

struct CheckpointMsg {
  std::uint64_t household_id = 0;
};

struct CheckpointAckMsg {
  std::uint64_t household_id = 0;
  std::uint32_t days_completed = 0;  ///< day count the checkpoint captured
};

struct StatsMsg {
  std::uint64_t household_id = 0;
};

struct StatsAckMsg {
  std::uint64_t household_id = 0;
  std::uint32_t days_completed = 0;
  double savings_cents = 0.0;     ///< cumulative over completed days
  double bill_cents = 0.0;        ///< cumulative over completed days
  double usage_cost_cents = 0.0;  ///< cumulative over completed days
  double battery_level_kwh = 0.0;
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct ByeMsg {
  std::uint64_t household_id = 0;
};

struct ByeAckMsg {
  std::uint64_t household_id = 0;
};

/// A decoded frame: exactly one of the optionals below is meaningful,
/// selected by `type`. (A tagged union by hand keeps the decoder free of
/// std::variant visitation noise in the per-frame hot path.)
struct Frame {
  MessageType type = MessageType::kError;
  HelloMsg hello;
  HelloAckMsg hello_ack;
  ReadingsMsg readings;
  ReadingsAckMsg readings_ack;
  CheckpointMsg checkpoint;
  CheckpointAckMsg checkpoint_ack;
  StatsMsg stats;
  StatsAckMsg stats_ack;
  ErrorMsg error;
  ByeMsg bye;
  ByeAckMsg bye_ack;
};

// --- encoding ------------------------------------------------------------
// Each encoder appends one complete frame (length prefix included) to
// `out`.

void encode_hello(std::vector<std::uint8_t>& out, const HelloMsg& msg);
void encode_hello_ack(std::vector<std::uint8_t>& out, const HelloAckMsg& msg);
void encode_readings(std::vector<std::uint8_t>& out, const ReadingsMsg& msg);
void encode_readings_ack(std::vector<std::uint8_t>& out,
                         const ReadingsAckMsg& msg);
void encode_checkpoint(std::vector<std::uint8_t>& out,
                       const CheckpointMsg& msg);
void encode_checkpoint_ack(std::vector<std::uint8_t>& out,
                           const CheckpointAckMsg& msg);
void encode_stats(std::vector<std::uint8_t>& out, const StatsMsg& msg);
void encode_stats_ack(std::vector<std::uint8_t>& out, const StatsAckMsg& msg);
void encode_error(std::vector<std::uint8_t>& out, const ErrorMsg& msg);
void encode_bye(std::vector<std::uint8_t>& out, const ByeMsg& msg);
void encode_bye_ack(std::vector<std::uint8_t>& out, const ByeAckMsg& msg);

// --- decoding ------------------------------------------------------------

/// Decodes one frame payload (the bytes after the length prefix: version,
/// type, body). Throws DataError on any malformation: wrong version,
/// unknown type, truncated body, trailing bytes, non-finite double, or an
/// over-long embedded string.
Frame decode_payload(const std::uint8_t* data, std::size_t size);

/// Incremental frame extractor for a byte stream. Feed received bytes with
/// append(); take() yields complete payloads one at a time. Throws
/// DataError when the stream is unrecoverable (length prefix over
/// kMaxFrameBytes) — the connection must then be dropped, since framing is
/// lost.
class FrameReader {
 public:
  void append(const std::uint8_t* data, std::size_t size);

  /// Extracts the next complete frame payload into `payload` (version byte
  /// first). Returns false when no complete frame is buffered yet.
  bool take(std::vector<std::uint8_t>& payload);

  /// Bytes currently buffered (for tests and flow-control decisions).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace rlblh::serve
