#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "meter/trace.h"
#include "serve/backoff.h"
#include "serve/client.h"
#include "sim/scenario.h"
#include "util/error.h"
#include "util/rng.h"

namespace rlblh::serve {

double LoadGenResult::rtt_quantile(double q) const {
  if (rtt_us.empty()) return 0.0;
  std::vector<double> sorted = rtt_us;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const std::size_t rank = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(clamped * static_cast<double>(sorted.size())));
  return sorted[rank];
}

std::string household_spec(const LoadGenConfig& config, std::size_t h) {
  // Appending wins over any earlier key, so the derived seed is always the
  // effective one; hseed keeps its seed + 1000 coupling.
  return config.base_spec + ";seed=" +
         std::to_string(config.seed_base + static_cast<std::uint64_t>(h));
}

namespace {

struct ThreadStats {
  std::size_t days_completed = 0;
  std::size_t intervals_sent = 0;
  std::size_t frames_sent = 0;
  std::size_t reconnects = 0;
  std::size_t draining_waits = 0;
  std::vector<double> rtt_us;
};

void drive_household(ServeClient& client, const LoadGenConfig& config,
                     std::size_t h, ThreadStats& stats) {
  const std::string spec_text = household_spec(config, h);
  const std::uint64_t id = config.seed_base + static_cast<std::uint64_t>(h);
  const ScenarioSpec spec = ScenarioSpec::parse(spec_text);
  // Draining retries back off with decorrelated jitter, like reconnects: a
  // fleet told "come back later" in unison must not return in unison.
  DecorrelatedJitterBackoff draining_backoff(
      std::chrono::milliseconds(10), std::chrono::milliseconds(500),
      Rng(config.seed_base * 0x9e3779b97f4a7c15ULL + id));

  for (;;) {  // resume loop: one iteration per (re)connection epoch
    try {
      const HelloAckMsg hello = client.hello(id, spec_text);
      draining_backoff.reset();
      std::size_t day = hello.days_completed;
      std::unique_ptr<TraceSource> source = make_scenario_source(spec);
      const std::size_t n_m = source->intervals();
      DayTrace trace(n_m);
      // Regenerate the household's deterministic stream up to the server's
      // cursor; days the daemon already closed are never re-sent.
      for (std::size_t d = 0; d < day; ++d) source->next_day_into(trace);
      std::size_t interval = 0;
      bool have_day = false;
      if (hello.day_open != 0) {
        source->next_day_into(trace);
        interval = hello.next_interval;
        have_day = true;
      }
      std::vector<double> values;
      while (day < config.days || have_day) {
        if (!have_day) {
          source->next_day_into(trace);
          have_day = true;
        }
        while (interval < n_m) {
          const std::size_t count =
              std::min(config.batch_intervals, n_m - interval);
          const double* v = trace.values().data() + interval;
          values.assign(v, v + count);
          client.send_readings(id, static_cast<std::uint32_t>(day),
                               static_cast<std::uint32_t>(interval), values);
          stats.rtt_us.push_back(
              std::chrono::duration<double, std::micro>(client.last_rtt())
                  .count());
          ++stats.frames_sent;
          stats.intervals_sent += count;
          interval += count;
        }
        ++day;
        ++stats.days_completed;
        interval = 0;
        have_day = false;
      }
      if (config.final_checkpoint) client.checkpoint(id);
      client.bye(id);
      return;
    } catch (const ServeRequestError& e) {
      if (e.code() == ErrorCode::kDraining) {
        // The daemon is shutting down; wait for its successor.
        ++stats.draining_waits;
        std::this_thread::sleep_for(draining_backoff.next());
        continue;
      }
      throw;  // out-of-order / bad-spec: a generator bug, surface it
    } catch (const DataError&) {
      // Transport loss (daemon died or dropped us): reconnect with backoff
      // and replay from whatever cursor the restarted daemon reports.
      ++stats.reconnects;
      client.connect(config.connect_attempts);
    }
  }
}

}  // namespace

LoadGenResult run_load(const LoadGenConfig& config) {
  RLBLH_REQUIRE(config.households >= 1, "load_gen: need >= 1 household");
  RLBLH_REQUIRE(config.batch_intervals >= 1,
                "load_gen: need >= 1 interval per frame");
  const std::size_t threads = std::max<std::size_t>(1, config.threads);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<ThreadStats> per_thread(threads);
  std::vector<std::exception_ptr> failures(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      try {
        ServeClient client(config.endpoint,
                           /*backoff_seed=*/config.seed_base ^ (t + 1));
        client.connect(config.connect_attempts);
        for (std::size_t h = t; h < config.households; h += threads) {
          drive_household(client, config, h, per_thread[t]);
        }
      } catch (...) {
        failures[t] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const std::exception_ptr& e : failures) {
    if (e) std::rethrow_exception(e);
  }

  LoadGenResult result;
  result.households = config.households;
  for (ThreadStats& s : per_thread) {
    result.days_completed += s.days_completed;
    result.intervals_sent += s.intervals_sent;
    result.frames_sent += s.frames_sent;
    result.reconnects += s.reconnects;
    result.draining_waits += s.draining_waits;
    result.rtt_us.insert(result.rtt_us.end(), s.rtt_us.begin(),
                         s.rtt_us.end());
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace rlblh::serve
