#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/obs.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "util/error.h"

namespace rlblh::serve {

namespace {
/// Receive buffer per connection; frames are tiny, this batches syscalls.
constexpr std::size_t kRecvChunk = 64 * 1024;

/// Mode-default admission caps. Thread-per-connection without a cap is an
/// operational hazard (a thread plus its stack per socket), so it gets a
/// defensible ceiling; the reactor's per-connection cost is one fd plus a
/// small struct, so its ceiling is an order-of-magnitude-larger backstop.
constexpr std::size_t kDefaultMaxConnsThreadPerConn = 256;
constexpr std::size_t kDefaultMaxConnsEventLoop = 65536;
}  // namespace

ServeServer::ServeServer(ServeConfig config)
    : config_(std::move(config)), store_(config_.checkpoint_dir) {
  RLBLH_REQUIRE(config_.checkpoint_period_days >= 1,
                "serve: checkpoint period must be >= 1 day");
}

ServeServer::~ServeServer() { stop(); }

std::size_t ServeServer::effective_max_connections() const {
  if (config_.max_connections != 0) return config_.max_connections;
  return config_.threading == ThreadingMode::kEventLoop
             ? kDefaultMaxConnsEventLoop
             : kDefaultMaxConnsThreadPerConn;
}

void ServeServer::start() {
  RLBLH_REQUIRE(listen_fd_ < 0, "serve: start() called twice");
  if (::pipe(stop_pipe_) < 0) {
    throw DataError("serve: cannot create stop pipe");
  }
  listen_fd_ = listen_endpoint(config_.listen, &endpoint_);
  if (config_.threading == ThreadingMode::kEventLoop) {
    start_event_loop();
    return;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServeServer::start_event_loop() {
  raise_fd_limit();
  std::size_t nshards = config_.shards;
  if (nshards == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    nshards = std::max<std::size_t>(1, std::min<std::size_t>(4, hw / 2));
  }
  Reactor::Config rc;
  rc.listen_fd = listen_fd_;
  rc.max_connections = effective_max_connections();
  rc.deliver = [this](std::shared_ptr<Conn> conn,
                      std::vector<std::uint8_t>&& payload) {
    route_payload(std::move(conn), std::move(payload));
  };
  rc.connections_accepted = &connections_;
  rc.connections_rejected = &rejected_;
  rc.malformed_frames = &malformed_;
  rc.draining = &draining_;
  reactor_ = std::make_unique<Reactor>(rc);
  for (std::size_t i = 0; i < nshards; ++i) {
    Shard::Config sc;
    sc.store = &store_;
    sc.reactor = reactor_.get();
    sc.checkpoint_period_days = config_.checkpoint_period_days;
    sc.batch_width = config_.batch_width;
    sc.draining = &draining_;
    sc.malformed = &malformed_;
    sc.days_completed = &days_completed_;
    sc.checkpoints = &checkpoints_;
    sc.batch_days = &batch_days_;
    shards_.push_back(std::make_unique<Shard>(sc));
  }
  for (auto& shard : shards_) shard->start();
  reactor_->start();
}

void ServeServer::route_payload(std::shared_ptr<Conn> conn,
                                std::vector<std::uint8_t>&& payload) {
  // Every server-bound message carries its u64 household id at payload
  // offset 2 (after version + type), which is what lets the reactor route
  // without decoding. Short payloads cannot be valid server-bound frames;
  // they go to shard 0 whose decoder produces the same error reply the
  // thread-per-conn path would.
  std::uint64_t id = 0;
  if (payload.size() >= 10) {
    for (std::size_t i = 0; i < 8; ++i) {
      id |= static_cast<std::uint64_t>(payload[2 + i]) << (8 * i);
    }
  }
  shards_[shard_for_household(id, shards_.size())]->post(std::move(conn),
                                                         std::move(payload));
}

void ServeServer::accept_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0 || draining_.load()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (live_conns_.load() >= effective_max_connections()) {
      rejected_.fetch_add(1);
      close_quietly(fd);
      continue;
    }
    connections_.fetch_add(1);
    live_conns_.fetch_add(1);
    RLBLH_OBS_COUNT("serve.connections", 1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (draining_.load()) {
      live_conns_.fetch_sub(1);
      close_quietly(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void ServeServer::connection_loop(int fd) {
  FrameReader reader;
  std::vector<std::uint8_t> chunk(kRecvChunk);
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> out;
  try {
    while (!draining_.load()) {
      const std::size_t n = recv_some(fd, chunk.data(), chunk.size());
      if (n == 0) break;  // orderly close
      reader.append(chunk.data(), n);
      out.clear();
      bool fatal = false;
      try {
        while (reader.take(payload)) {
          handle_frame(payload.data(), payload.size(), out);
        }
      } catch (const DataError&) {
        // Length prefix over the limit: framing is lost, drop the peer
        // after telling it why.
        malformed_.fetch_add(1);
        RLBLH_OBS_COUNT("serve.malformed_frames", 1);
        encode_error(out, {ErrorCode::kMalformedFrame,
                           "unrecoverable framing error"});
        fatal = true;
      }
      if (!out.empty()) send_all(fd, out.data(), out.size());
      if (fatal) break;
    }
  } catch (const DataError&) {
    // Peer vanished mid-send/recv; nothing to clean up beyond the fd.
  }
  close_quietly(fd);
  live_conns_.fetch_sub(1);
}

ServeServer::Entry* ServeServer::find_entry(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void ServeServer::handle_frame(const std::uint8_t* payload, std::size_t size,
                               std::vector<std::uint8_t>& out) {
  Frame frame;
  try {
    frame = decode_payload(payload, size);
  } catch (const DataError& e) {
    // A malformed body inside an intact frame: reject it, keep the
    // connection — framing is still synchronized.
    malformed_.fetch_add(1);
    RLBLH_OBS_COUNT("serve.malformed_frames", 1);
    encode_error(out, {ErrorCode::kMalformedFrame, e.what()});
    return;
  }
  RLBLH_OBS_COUNT("serve.frames", 1);

  switch (frame.type) {
    case MessageType::kHello: {
      if (draining_.load()) {
        encode_error(out, {ErrorCode::kDraining, "server is draining"});
        return;
      }
      const std::uint64_t id = frame.hello.household_id;
      std::unique_ptr<HouseholdSession> fresh;
      bool resumed = false;
      try {
        if (store_.exists(id)) {
          fresh = store_.load(id);
          resumed = true;
          // The client must agree on what this household is.
          const std::string wanted =
              ScenarioSpec::parse(frame.hello.spec).canonical();
          if (wanted != fresh->spec_text()) {
            encode_error(out, {ErrorCode::kBadSpec,
                               "spec does not match the checkpoint for id " +
                                   std::to_string(id)});
            return;
          }
        } else {
          fresh = std::make_unique<HouseholdSession>(id, frame.hello.spec);
        }
      } catch (const ConfigError& e) {
        encode_error(out, {ErrorCode::kBadSpec, e.what()});
        return;
      } catch (const DataError& e) {
        encode_error(out, {ErrorCode::kInternal, e.what()});
        return;
      }
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        auto it = sessions_.find(id);
        if (it == sessions_.end()) {
          auto entry = std::make_unique<Entry>();
          entry->session = std::move(fresh);
          entry->checkpointed_days = entry->session->days_completed();
          it = sessions_.emplace(id, std::move(entry)).first;
        }
        // An id that is already live (client reconnected before we noticed
        // the old socket die) keeps its in-memory session — it is strictly
        // newer than any checkpoint.
        std::lock_guard<std::mutex> entry_lock(it->second->mu);
        HouseholdSession& s = *it->second->session;
        HelloAckMsg ack;
        ack.household_id = id;
        ack.days_completed = static_cast<std::uint32_t>(s.days_completed());
        ack.next_interval = static_cast<std::uint32_t>(s.next_interval());
        ack.day_open = s.day_open() ? 1 : 0;
        ack.resumed = resumed ? 1 : 0;
        encode_hello_ack(out, ack);
      }
      RLBLH_OBS_COUNT("serve.hellos", 1);
      return;
    }
    case MessageType::kReadings: {
      Entry* entry = find_entry(frame.readings.household_id);
      if (entry == nullptr) {
        encode_error(out, {ErrorCode::kUnknownHousehold,
                           "no session for id " +
                               std::to_string(frame.readings.household_id)});
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(entry->mu);
      HouseholdSession& s = *entry->session;
      bool day_done = false;
      try {
        day_done = s.apply_readings(
            frame.readings.day, frame.readings.first_interval,
            std::span<const double>(frame.readings.values));
      } catch (const ConfigError& e) {
        encode_error(out, {ErrorCode::kOutOfOrder, e.what()});
        return;
      }
      if (day_done) {
        days_completed_.fetch_add(1);
        RLBLH_OBS_COUNT("serve.days_completed", 1);
        if (s.days_completed() % config_.checkpoint_period_days == 0) {
          // Persist before acking: an acked closed day is on disk.
          store_.save(s);
          entry->checkpointed_days = s.days_completed();
          checkpoints_.fetch_add(1);
          RLBLH_OBS_COUNT("serve.checkpoints", 1);
        }
      }
      ReadingsAckMsg ack;
      ack.household_id = frame.readings.household_id;
      ack.day = static_cast<std::uint32_t>(s.days_completed());
      ack.next_interval = static_cast<std::uint32_t>(s.next_interval());
      ack.day_completed = day_done ? 1 : 0;
      encode_readings_ack(out, ack);
      const auto dt = std::chrono::steady_clock::now() - t0;
      const double us =
          std::chrono::duration<double, std::micro>(dt).count() /
          static_cast<double>(std::max<std::size_t>(
              frame.readings.values.size(), 1));
      RLBLH_OBS_COUNT("serve.readings", frame.readings.values.size());
      RLBLH_OBS_OBSERVE("serve.step_latency_us", us);
      return;
    }
    case MessageType::kCheckpoint: {
      Entry* entry = find_entry(frame.checkpoint.household_id);
      if (entry == nullptr) {
        encode_error(out, {ErrorCode::kUnknownHousehold,
                           "no session for id " +
                               std::to_string(frame.checkpoint.household_id)});
        return;
      }
      std::lock_guard<std::mutex> lock(entry->mu);
      HouseholdSession& s = *entry->session;
      if (s.day_open()) {
        encode_error(out, {ErrorCode::kOutOfOrder,
                           "cannot checkpoint mid-day (finish the day "
                           "first)"});
        return;
      }
      store_.save(s);
      entry->checkpointed_days = s.days_completed();
      checkpoints_.fetch_add(1);
      RLBLH_OBS_COUNT("serve.checkpoints", 1);
      CheckpointAckMsg ack;
      ack.household_id = frame.checkpoint.household_id;
      ack.days_completed = static_cast<std::uint32_t>(s.days_completed());
      encode_checkpoint_ack(out, ack);
      return;
    }
    case MessageType::kStats: {
      Entry* entry = find_entry(frame.stats.household_id);
      if (entry == nullptr) {
        encode_error(out, {ErrorCode::kUnknownHousehold,
                           "no session for id " +
                               std::to_string(frame.stats.household_id)});
        return;
      }
      std::lock_guard<std::mutex> lock(entry->mu);
      const HouseholdSession& s = *entry->session;
      StatsAckMsg ack;
      ack.household_id = frame.stats.household_id;
      ack.days_completed = static_cast<std::uint32_t>(s.days_completed());
      ack.savings_cents = s.savings_cents();
      ack.bill_cents = s.bill_cents();
      ack.usage_cost_cents = s.usage_cost_cents();
      ack.battery_level_kwh = s.battery_level();
      encode_stats_ack(out, ack);
      return;
    }
    case MessageType::kBye: {
      ByeAckMsg ack;
      ack.household_id = frame.bye.household_id;
      encode_bye_ack(out, ack);
      return;
    }
    default:
      // Server-bound protocol only; acks arriving here are client bugs.
      malformed_.fetch_add(1);
      encode_error(out, {ErrorCode::kMalformedFrame,
                         "unexpected message type on server"});
      return;
  }
}

std::size_t ServeServer::household_count() const {
  if (config_.threading == ThreadingMode::kEventLoop) {
    std::size_t count = 0;
    for (const auto& shard : shards_) count += shard->session_count();
    return count;
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

void ServeServer::shutdown_sockets() {
  draining_.store(true);
  if (stop_pipe_[1] >= 0) {
    const std::uint8_t byte = 1;
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void ServeServer::join_threads() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    close_quietly(listen_fd_);
    listen_fd_ = -1;
    unlink_endpoint(endpoint_.empty() ? config_.listen : endpoint_);
  }
  close_quietly(stop_pipe_[0]);
  close_quietly(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

void ServeServer::stop() {
  if (stopped_.exchange(true)) return;
  if (config_.threading == ThreadingMode::kEventLoop) {
    draining_.store(true);
    if (reactor_ != nullptr) {
      // In-flight frames finish: the reactor drains its sockets and joins
      // first, then each shard empties what was already queued.
      reactor_->shutdown_conns();
      reactor_->stop();
    }
    for (auto& shard : shards_) shard->stop(/*drain_queue=*/true);
    for (auto& shard : shards_) shard->join();
    join_threads();
    for (auto& shard : shards_) {
      shard->for_each_session(
          [this](HouseholdSession& s, std::size_t& checkpointed_days) {
            if (!s.day_open() && s.days_completed() > checkpointed_days) {
              store_.save(s);
              checkpointed_days = s.days_completed();
              checkpoints_.fetch_add(1);
              RLBLH_OBS_COUNT("serve.checkpoints", 1);
            }
          });
    }
    return;
  }
  shutdown_sockets();
  join_threads();
  // Drain checkpoint: persist every household whose completed days are
  // newer than its last save. Households mid-day keep their last
  // day-boundary checkpoint — the client replays the open day.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& [id, entry] : sessions_) {
    std::lock_guard<std::mutex> entry_lock(entry->mu);
    const HouseholdSession& s = *entry->session;
    if (!s.day_open() && s.days_completed() > entry->checkpointed_days) {
      store_.save(s);
      entry->checkpointed_days = s.days_completed();
      checkpoints_.fetch_add(1);
      RLBLH_OBS_COUNT("serve.checkpoints", 1);
    }
  }
}

void ServeServer::abort_without_checkpoint() {
  if (stopped_.exchange(true)) return;
  if (config_.threading == ThreadingMode::kEventLoop) {
    draining_.store(true);
    if (reactor_ != nullptr) reactor_->stop();
    for (auto& shard : shards_) shard->stop(/*drain_queue=*/false);
    for (auto& shard : shards_) shard->join();
    join_threads();
    return;
  }
  shutdown_sockets();
  join_threads();
}

}  // namespace rlblh::serve
