// Epoll reactor for the event-loop serving mode (DESIGN.md §15).
//
// One event-loop thread owns every socket: it accepts, reads non-blocking,
// reassembles frames with the existing FrameReader, and hands each decoded
// payload to a deliver callback (the server routes it to a session shard by
// household id). Replies flow the other way: shard threads call send()
// which writes directly when the socket accepts it and otherwise parks the
// bytes in the connection's outbuf and arms EPOLLOUT for the reactor to
// flush — the reactor never blocks on a slow peer, a shard never blocks on
// a socket.
//
// Ownership rules that keep this safe without a lock around the loop:
//   - only the reactor thread touches the epoll set membership, the
//     FrameReader, and fd close;
//   - Conn objects are shared_ptr so a shard holding a queued frame can
//     outlive the socket; `dead` flips (under write_mu) before the fd
//     closes, and send() checks it under the same mutex, so no shard can
//     write to a recycled fd;
//   - EPOLLOUT arm/disarm decisions are always made under the conn's
//     write_mu, which serializes the shard-side MOD against the
//     reactor-side MOD.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"

namespace rlblh::serve {

/// One reactor-owned connection. Shards hold shared_ptrs; the reactor
/// alone closes the fd.
struct Conn {
  explicit Conn(int fd_in) : fd(fd_in) {}

  const int fd;
  FrameReader reader;  ///< reactor thread only

  std::mutex write_mu;
  std::vector<std::uint8_t> outbuf;  ///< unsent reply bytes (write_mu)
  bool want_write = false;           ///< EPOLLOUT armed (write_mu)
  bool close_after_flush = false;    ///< drop once outbuf drains (write_mu)
  bool dead = false;                 ///< fd closed/closing (write_mu)
};

class Reactor {
 public:
  struct Config {
    int listen_fd = -1;              ///< bound+listening; reactor borrows it
    std::size_t max_connections = 0; ///< admit at most this many at once
    /// Complete frame payload from a connection, in arrival order.
    std::function<void(std::shared_ptr<Conn>, std::vector<std::uint8_t>&&)>
        deliver;
    std::atomic<std::size_t>* connections_accepted = nullptr;
    std::atomic<std::size_t>* connections_rejected = nullptr;
    std::atomic<std::size_t>* malformed_frames = nullptr;
    std::atomic<bool>* draining = nullptr;
  };

  explicit Reactor(Config config);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the event-loop thread. Throws DataError when epoll setup fails.
  void start();

  /// Signals the loop to exit (it closes every connection) and joins it.
  void stop();

  /// Asks the loop to shutdown() every live connection so blocked peers
  /// see EOF; the loop then reaps them. Callable from any thread.
  void shutdown_conns();

  /// Queues `size` bytes of reply for the connection; writes directly when
  /// the socket accepts it. Thread-safe; silently drops when the
  /// connection died (the peer is gone — there is nobody to tell).
  void send(const std::shared_ptr<Conn>& conn, const std::uint8_t* data,
            std::size_t size);

  /// Live (admitted, not yet closed) connection count.
  std::size_t live_connections() const { return live_.load(); }

 private:
  void loop();
  void accept_ready();
  void read_ready(const std::shared_ptr<Conn>& conn);
  void write_ready(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void wake();

  Config config_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: stop/shutdown requests
  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::size_t> live_{0};
  std::thread thread_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  ///< loop thread
};

}  // namespace rlblh::serve
