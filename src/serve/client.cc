#include "serve/client.h"

#include <thread>
#include <utility>

#include "serve/net.h"
#include "util/rng.h"

namespace rlblh::serve {

ServeClient::ServeClient(std::string endpoint, std::uint64_t backoff_seed,
                         std::chrono::milliseconds backoff_base,
                         std::chrono::milliseconds backoff_cap)
    : endpoint_(std::move(endpoint)),
      backoff_(backoff_base, backoff_cap,
               Rng(derive_stream_seed(backoff_seed, 0xBACC0FF))) {}

ServeClient::~ServeClient() { disconnect(); }

void ServeClient::connect(std::size_t max_attempts) {
  RLBLH_REQUIRE(max_attempts >= 1, "ServeClient: need >= 1 attempt");
  disconnect();
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      fd_ = connect_endpoint(endpoint_);
      reader_ = FrameReader();
      backoff_.reset();
      return;
    } catch (const DataError&) {
      ++failed_attempts_;
      if (attempt >= max_attempts) throw;
      std::this_thread::sleep_for(backoff_.next());
    }
  }
}

void ServeClient::disconnect() {
  if (fd_ >= 0) {
    close_quietly(fd_);
    fd_ = -1;
  }
}

Frame ServeClient::round_trip(const std::vector<std::uint8_t>& request) {
  RLBLH_REQUIRE(fd_ >= 0, "ServeClient: not connected");
  const auto t0 = std::chrono::steady_clock::now();
  try {
    send_all(fd_, request.data(), request.size());
    std::vector<std::uint8_t> payload;
    std::uint8_t chunk[16 * 1024];
    while (!reader_.take(payload)) {
      const std::size_t n = recv_some(fd_, chunk, sizeof(chunk));
      if (n == 0) {
        throw DataError("ServeClient: server closed the connection");
      }
      reader_.append(chunk, n);
    }
    last_rtt_ = std::chrono::steady_clock::now() - t0;
    Frame frame = decode_payload(payload.data(), payload.size());
    if (frame.type == MessageType::kError) {
      throw ServeRequestError(frame.error.code, frame.error.message);
    }
    return frame;
  } catch (const ServeRequestError&) {
    throw;  // connection is intact; do not tear it down
  } catch (const DataError&) {
    disconnect();
    throw;
  }
}

namespace {
[[noreturn]] void wrong_reply(const char* wanted) {
  throw DataError(std::string("ServeClient: expected ") + wanted);
}
}  // namespace

HelloAckMsg ServeClient::hello(std::uint64_t household_id,
                               const std::string& spec) {
  std::vector<std::uint8_t> req;
  encode_hello(req, {household_id, spec});
  Frame reply = round_trip(req);
  if (reply.type != MessageType::kHelloAck) wrong_reply("HelloAck");
  return reply.hello_ack;
}

ReadingsAckMsg ServeClient::send_readings(std::uint64_t household_id,
                                          std::uint32_t day,
                                          std::uint32_t first_interval,
                                          const std::vector<double>& values) {
  std::vector<std::uint8_t> req;
  ReadingsMsg msg;
  msg.household_id = household_id;
  msg.day = day;
  msg.first_interval = first_interval;
  msg.values = values;
  encode_readings(req, msg);
  Frame reply = round_trip(req);
  if (reply.type != MessageType::kReadingsAck) wrong_reply("ReadingsAck");
  return reply.readings_ack;
}

CheckpointAckMsg ServeClient::checkpoint(std::uint64_t household_id) {
  std::vector<std::uint8_t> req;
  encode_checkpoint(req, {household_id});
  Frame reply = round_trip(req);
  if (reply.type != MessageType::kCheckpointAck) wrong_reply("CheckpointAck");
  return reply.checkpoint_ack;
}

StatsAckMsg ServeClient::stats(std::uint64_t household_id) {
  std::vector<std::uint8_t> req;
  encode_stats(req, {household_id});
  Frame reply = round_trip(req);
  if (reply.type != MessageType::kStatsAck) wrong_reply("StatsAck");
  return reply.stats_ack;
}

ByeAckMsg ServeClient::bye(std::uint64_t household_id) {
  std::vector<std::uint8_t> req;
  encode_bye(req, {household_id});
  Frame reply = round_trip(req);
  if (reply.type != MessageType::kByeAck) wrong_reply("ByeAck");
  return reply.bye_ack;
}

}  // namespace rlblh::serve
