// rlblh_serve — the online metering daemon.
//
//   rlblh_serve --listen unix:/tmp/rlblh.sock --checkpoint-dir /var/lib/rlblh
//
// Accepts households over the serve/protocol.h frame protocol, steps each
// one's policy as readings arrive, and checkpoints at day boundaries so a
// restart resumes bitwise-identically (DESIGN.md §15). SIGTERM/SIGINT
// trigger a graceful drain: stop accepting, finish in-flight frames,
// persist every household's newest completed day, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "obs/obs.h"
#include "serve/server.h"
#include "util/error.h"

namespace {

// Signal flag + self-pipe: the handler only writes a byte; the main thread
// blocks on the pipe, so shutdown needs no polling loop.
volatile std::sig_atomic_t g_signaled = 0;
int g_wake_pipe[2] = {-1, -1};

extern "C" void on_signal(int) {
  g_signaled = 1;
  const char byte = 1;
  [[maybe_unused]] ssize_t n = write(g_wake_pipe[1], &byte, 1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --checkpoint-dir DIR [--listen unix:PATH|tcp:PORT]"
               " [--checkpoint-period DAYS]"
               " [--threading event-loop|thread-per-conn] [--shards N]"
               " [--batch-width N] [--max-connections N] [--obs]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rlblh::serve::ServeConfig config;
  bool obs_on = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--listen" && has_value) {
      config.listen = argv[++i];
    } else if (arg == "--checkpoint-dir" && has_value) {
      config.checkpoint_dir = argv[++i];
    } else if (arg == "--checkpoint-period" && has_value) {
      config.checkpoint_period_days =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--threading" && has_value) {
      const std::string mode = argv[++i];
      if (mode == "event-loop") {
        config.threading = rlblh::serve::ThreadingMode::kEventLoop;
      } else if (mode == "thread-per-conn") {
        config.threading = rlblh::serve::ThreadingMode::kThreadPerConn;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--shards" && has_value) {
      config.shards =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--batch-width" && has_value) {
      config.batch_width =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--max-connections" && has_value) {
      config.max_connections =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--obs") {
      obs_on = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (config.checkpoint_dir.empty()) return usage(argv[0]);
  if (obs_on) rlblh::obs::set_enabled(true);

  if (pipe(g_wake_pipe) != 0) {
    std::fprintf(stderr, "rlblh_serve: cannot create signal pipe\n");
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    rlblh::serve::ServeServer server(config);
    server.start();
    // Scripts wait for this line; keep the format stable.
    std::printf("rlblh_serve listening on %s\n", server.endpoint().c_str());
    std::fflush(stdout);

    char byte = 0;
    while (!g_signaled) {
      const ssize_t n = read(g_wake_pipe[0], &byte, 1);
      if (n > 0 || (n < 0 && errno != EINTR)) break;
    }
    std::printf("rlblh_serve draining (%zu households, %zu days, "
                "%zu checkpoints)\n",
                server.household_count(), server.days_completed(),
                server.checkpoints_written());
    std::fflush(stdout);
    server.stop();
    std::printf("rlblh_serve stopped cleanly\n");
    return 0;
  } catch (const rlblh::DataError& e) {
    std::fprintf(stderr, "rlblh_serve: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rlblh_serve: %s\n", e.what());
    return 1;
  }
}
