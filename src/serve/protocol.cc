#include "serve/protocol.h"

#include <cmath>
#include <cstring>

#include "util/error.h"

namespace rlblh::serve {

namespace {

// The protocol is defined little-endian; these helpers are byte-order
// explicit so the wire format does not depend on host endianness.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounded cursor over a frame payload; every read checks the remaining
/// length so a truncated body throws instead of reading past the buffer.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return data_[need(1)]; }

  std::uint16_t u16() {
    const std::size_t at = need(2);
    return static_cast<std::uint16_t>(data_[at] |
                                      (std::uint16_t{data_[at + 1]} << 8));
  }

  std::uint32_t u32() {
    const std::size_t at = need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[at + i];
    return v;
  }

  std::uint64_t u64() {
    const std::size_t at = need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[at + i];
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str(std::size_t length) {
    const std::size_t at = need(length);
    return std::string(reinterpret_cast<const char*>(data_ + at), length);
  }

  std::size_t remaining() const { return size_ - pos_; }

  void expect_exhausted() const {
    if (pos_ != size_) {
      throw DataError("serve protocol: trailing bytes in frame");
    }
  }

 private:
  std::size_t need(std::size_t bytes) {
    if (size_ - pos_ < bytes) {
      throw DataError("serve protocol: truncated frame body");
    }
    const std::size_t at = pos_;
    pos_ += bytes;
    return at;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Opens a frame: reserves the length prefix and writes version + type.
/// Returns the index of the prefix for close_frame to patch.
std::size_t open_frame(std::vector<std::uint8_t>& out, MessageType type) {
  const std::size_t prefix_at = out.size();
  put_u32(out, 0);  // patched by close_frame
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  return prefix_at;
}

void close_frame(std::vector<std::uint8_t>& out, std::size_t prefix_at) {
  const std::size_t payload = out.size() - prefix_at - 4;
  RLBLH_REQUIRE(payload <= kMaxFrameBytes,
                "serve protocol: frame exceeds kMaxFrameBytes");
  for (int i = 0; i < 4; ++i) {
    out[prefix_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
}

double checked_f64(Cursor& c, const char* what) {
  const double v = c.f64();
  if (!std::isfinite(v)) {
    throw DataError(std::string("serve protocol: non-finite ") + what);
  }
  return v;
}

}  // namespace

void encode_hello(std::vector<std::uint8_t>& out, const HelloMsg& msg) {
  RLBLH_REQUIRE(msg.spec.size() <= 0xFFFF,
                "serve protocol: spec string too long");
  const std::size_t at = open_frame(out, MessageType::kHello);
  put_u64(out, msg.household_id);
  put_u16(out, static_cast<std::uint16_t>(msg.spec.size()));
  out.insert(out.end(), msg.spec.begin(), msg.spec.end());
  close_frame(out, at);
}

void encode_hello_ack(std::vector<std::uint8_t>& out, const HelloAckMsg& msg) {
  const std::size_t at = open_frame(out, MessageType::kHelloAck);
  put_u64(out, msg.household_id);
  put_u32(out, msg.days_completed);
  put_u32(out, msg.next_interval);
  put_u8(out, msg.day_open);
  put_u8(out, msg.resumed);
  close_frame(out, at);
}

void encode_readings(std::vector<std::uint8_t>& out, const ReadingsMsg& msg) {
  RLBLH_REQUIRE(msg.values.size() <= 0xFFFF,
                "serve protocol: too many readings in one frame");
  const std::size_t at = open_frame(out, MessageType::kReadings);
  put_u64(out, msg.household_id);
  put_u32(out, msg.day);
  put_u32(out, msg.first_interval);
  put_u16(out, static_cast<std::uint16_t>(msg.values.size()));
  for (const double v : msg.values) put_f64(out, v);
  close_frame(out, at);
}

void encode_readings_ack(std::vector<std::uint8_t>& out,
                         const ReadingsAckMsg& msg) {
  const std::size_t at = open_frame(out, MessageType::kReadingsAck);
  put_u64(out, msg.household_id);
  put_u32(out, msg.day);
  put_u32(out, msg.next_interval);
  put_u8(out, msg.day_completed);
  close_frame(out, at);
}

void encode_checkpoint(std::vector<std::uint8_t>& out,
                       const CheckpointMsg& msg) {
  const std::size_t at = open_frame(out, MessageType::kCheckpoint);
  put_u64(out, msg.household_id);
  close_frame(out, at);
}

void encode_checkpoint_ack(std::vector<std::uint8_t>& out,
                           const CheckpointAckMsg& msg) {
  const std::size_t at = open_frame(out, MessageType::kCheckpointAck);
  put_u64(out, msg.household_id);
  put_u32(out, msg.days_completed);
  close_frame(out, at);
}

void encode_stats(std::vector<std::uint8_t>& out, const StatsMsg& msg) {
  const std::size_t at = open_frame(out, MessageType::kStats);
  put_u64(out, msg.household_id);
  close_frame(out, at);
}

void encode_stats_ack(std::vector<std::uint8_t>& out, const StatsAckMsg& msg) {
  const std::size_t at = open_frame(out, MessageType::kStatsAck);
  put_u64(out, msg.household_id);
  put_u32(out, msg.days_completed);
  put_f64(out, msg.savings_cents);
  put_f64(out, msg.bill_cents);
  put_f64(out, msg.usage_cost_cents);
  put_f64(out, msg.battery_level_kwh);
  close_frame(out, at);
}

void encode_error(std::vector<std::uint8_t>& out, const ErrorMsg& msg) {
  RLBLH_REQUIRE(msg.message.size() <= 0xFFFF,
                "serve protocol: error message too long");
  const std::size_t at = open_frame(out, MessageType::kError);
  put_u16(out, static_cast<std::uint16_t>(msg.code));
  put_u16(out, static_cast<std::uint16_t>(msg.message.size()));
  out.insert(out.end(), msg.message.begin(), msg.message.end());
  close_frame(out, at);
}

void encode_bye(std::vector<std::uint8_t>& out, const ByeMsg& msg) {
  const std::size_t at = open_frame(out, MessageType::kBye);
  put_u64(out, msg.household_id);
  close_frame(out, at);
}

void encode_bye_ack(std::vector<std::uint8_t>& out, const ByeAckMsg& msg) {
  const std::size_t at = open_frame(out, MessageType::kByeAck);
  put_u64(out, msg.household_id);
  close_frame(out, at);
}

Frame decode_payload(const std::uint8_t* data, std::size_t size) {
  Cursor c(data, size);
  if (c.remaining() < 2) {
    throw DataError("serve protocol: frame shorter than version + type");
  }
  const std::uint8_t version = c.u8();
  if (version != kProtocolVersion) {
    throw DataError("serve protocol: unsupported version " +
                    std::to_string(version));
  }
  Frame frame;
  const std::uint8_t raw_type = c.u8();
  switch (static_cast<MessageType>(raw_type)) {
    case MessageType::kHello: {
      frame.type = MessageType::kHello;
      frame.hello.household_id = c.u64();
      const std::uint16_t len = c.u16();
      frame.hello.spec = c.str(len);
      break;
    }
    case MessageType::kHelloAck: {
      frame.type = MessageType::kHelloAck;
      frame.hello_ack.household_id = c.u64();
      frame.hello_ack.days_completed = c.u32();
      frame.hello_ack.next_interval = c.u32();
      frame.hello_ack.day_open = c.u8();
      frame.hello_ack.resumed = c.u8();
      break;
    }
    case MessageType::kReadings: {
      frame.type = MessageType::kReadings;
      frame.readings.household_id = c.u64();
      frame.readings.day = c.u32();
      frame.readings.first_interval = c.u32();
      const std::uint16_t count = c.u16();
      frame.readings.values.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        frame.readings.values.push_back(checked_f64(c, "reading value"));
      }
      break;
    }
    case MessageType::kReadingsAck: {
      frame.type = MessageType::kReadingsAck;
      frame.readings_ack.household_id = c.u64();
      frame.readings_ack.day = c.u32();
      frame.readings_ack.next_interval = c.u32();
      frame.readings_ack.day_completed = c.u8();
      break;
    }
    case MessageType::kCheckpoint: {
      frame.type = MessageType::kCheckpoint;
      frame.checkpoint.household_id = c.u64();
      break;
    }
    case MessageType::kCheckpointAck: {
      frame.type = MessageType::kCheckpointAck;
      frame.checkpoint_ack.household_id = c.u64();
      frame.checkpoint_ack.days_completed = c.u32();
      break;
    }
    case MessageType::kStats: {
      frame.type = MessageType::kStats;
      frame.stats.household_id = c.u64();
      break;
    }
    case MessageType::kStatsAck: {
      frame.type = MessageType::kStatsAck;
      frame.stats_ack.household_id = c.u64();
      frame.stats_ack.days_completed = c.u32();
      frame.stats_ack.savings_cents = checked_f64(c, "savings");
      frame.stats_ack.bill_cents = checked_f64(c, "bill");
      frame.stats_ack.usage_cost_cents = checked_f64(c, "usage cost");
      frame.stats_ack.battery_level_kwh = checked_f64(c, "battery level");
      break;
    }
    case MessageType::kError: {
      frame.type = MessageType::kError;
      frame.error.code = static_cast<ErrorCode>(c.u16());
      const std::uint16_t len = c.u16();
      frame.error.message = c.str(len);
      break;
    }
    case MessageType::kBye: {
      frame.type = MessageType::kBye;
      frame.bye.household_id = c.u64();
      break;
    }
    case MessageType::kByeAck: {
      frame.type = MessageType::kByeAck;
      frame.bye_ack.household_id = c.u64();
      break;
    }
    default:
      throw DataError("serve protocol: unknown message type " +
                      std::to_string(raw_type));
  }
  c.expect_exhausted();
  return frame;
}

void FrameReader::append(const std::uint8_t* data, std::size_t size) {
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state appends are amortized O(size).
  if (consumed_ > 0 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameReader::take(std::vector<std::uint8_t>& payload) {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const std::uint8_t* p = buffer_.data() + consumed_;
  std::uint32_t length = 0;
  for (int i = 3; i >= 0; --i) length = (length << 8) | p[i];
  if (length > kMaxFrameBytes) {
    throw DataError("serve protocol: frame length " + std::to_string(length) +
                    " exceeds limit");
  }
  if (available < 4 + static_cast<std::size_t>(length)) return false;
  payload.assign(p + 4, p + 4 + length);
  consumed_ += 4 + static_cast<std::size_t>(length);
  return true;
}

}  // namespace rlblh::serve
