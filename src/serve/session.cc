#include "serve/session.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/serialize.h"
#include "util/error.h"

namespace rlblh::serve {

namespace {
constexpr const char* kMagic = "rlblh-serve-household v1";
}

HouseholdSession::HouseholdSession(std::uint64_t id,
                                   const std::string& spec_text) : id_(id) {
  spec_ = ScenarioSpec::parse(spec_text);
  spec_text_ = spec_.canonical();
  build_components();
}

void HouseholdSession::build_components() {
  prices_ = make_scenario_pricing(spec_);
  battery_ = Battery(spec_.battery_kwh, spec_.battery_kwh / 2.0);
  policy_ = make_scenario_policy(spec_);
  if (!policy_->checkpointable()) {
    throw ConfigError("serve: policy '" + std::string(policy_->name()) +
                      "' does not support checkpoint/restore; every served "
                      "household must be resumable");
  }
  ScenarioSpec blueprint = spec_;
  blueprint.seed = 0;
  blueprint.hseed.reset();
  blueprint_key_ = blueprint.canonical();
}

bool HouseholdSession::apply_readings(std::uint32_t day,
                                      std::uint32_t first_interval,
                                      std::span<const double> values) {
  RLBLH_REQUIRE(day == days_,
                "serve session: readings for day " + std::to_string(day) +
                    " but the session is at day " + std::to_string(days_));
  if (deferred_) {
    // Validate-and-buffer twin of the eager path below: identical checks,
    // identical messages, and the same partial-application cursor on a bad
    // value mid-frame (the valid prefix stays consumed) — so the reply for
    // every frame, good or bad, is byte-identical to the eager path's.
    const std::size_t cursor = next_interval();
    if (!day_open()) {
      RLBLH_REQUIRE(first_interval == 0,
                    "serve session: a day must start at interval 0");
    }
    RLBLH_REQUIRE(first_interval == cursor,
                  "serve session: readings at interval " +
                      std::to_string(first_interval) + " but interval " +
                      std::to_string(cursor) + " is next");
    RLBLH_REQUIRE(first_interval + values.size() <= prices_.intervals(),
                  "serve session: readings run past the end of the day");
    for (const double v : values) {
      RLBLH_REQUIRE(std::isfinite(v) && v >= 0.0,
                    "StreamEngine: usage must be finite and >= 0");
      pending_.push_back(v);
    }
    // Complete days are NOT finalized here: the owning shard chooses the
    // stream or batch finalizer before it sends the ack.
    return day_complete();
  }
  if (!engine_.day_open()) {
    RLBLH_REQUIRE(first_interval == 0,
                  "serve session: a day must start at interval 0");
    engine_.begin_day(prices_, battery_, *policy_);
  }
  RLBLH_REQUIRE(first_interval == engine_.next_interval(),
                "serve session: readings at interval " +
                    std::to_string(first_interval) + " but interval " +
                    std::to_string(engine_.next_interval()) + " is next");
  RLBLH_REQUIRE(first_interval + values.size() <= prices_.intervals(),
                "serve session: readings run past the end of the day");
  for (const double v : values) engine_.push(v);
  if (engine_.next_interval() == prices_.intervals()) {
    const DayResult& result = engine_.finish_day();
    savings_cents_ += result.savings_cents;
    bill_cents_ += result.bill_cents;
    usage_cost_cents_ += result.usage_cost_cents;
    ++days_;
    return true;
  }
  return false;
}

void HouseholdSession::set_deferred(bool on) {
  RLBLH_REQUIRE(!day_open(),
                "serve session: deferred mode cannot change mid-day");
  deferred_ = on;
}

void HouseholdSession::flush_pending_to_stream() {
  if (pending_.empty()) return;
  if (!engine_.day_open()) engine_.begin_day(prices_, battery_, *policy_);
  for (const double v : pending_) engine_.push(v);
  pending_.clear();
}

void HouseholdSession::finalize_day_stream() {
  RLBLH_REQUIRE(day_complete() || (engine_.day_open() &&
                                   engine_.next_interval() ==
                                       prices_.intervals()),
                "serve session: finalize without a complete day");
  flush_pending_to_stream();
  const DayResult& result = engine_.finish_day();
  savings_cents_ += result.savings_cents;
  bill_cents_ += result.bill_cents;
  usage_cost_cents_ += result.usage_cost_cents;
  ++days_;
}

void HouseholdSession::absorb_batch_lane(const BatchDay& day,
                                         const BatteryLanes& lanes,
                                         std::size_t lane) {
  RLBLH_REQUIRE(!engine_.day_open() && day_complete(),
                "serve session: batch absorb needs a fully buffered day");
  RLBLH_REQUIRE(lane < day.width && day.intervals == prices_.intervals(),
                "serve session: batch lane does not match the session");

  // Battery bookkeeping: BatteryLanes tracks levels and violation counts
  // but not the cumulative wasted/grid-extra totals that live in the
  // checkpoint bytes. For the (rare) violated lanes, replay the recorded
  // per-interval inputs through Battery::step's exact expressions, in
  // interval order, accumulating onto the pre-day totals — bitwise what a
  // streamed day would have accumulated, without re-stepping the batch.
  const std::size_t day_violations = day.battery_violations[lane];
  double wasted = battery_.total_wasted_charge();
  double grid_extra = battery_.total_grid_extra();
  if (day_violations != 0) {
    const std::size_t pulse = policy_->pulse_width();
    const double cap = battery_.capacity();
    const double ce = battery_.charge_efficiency();
    const double de = battery_.discharge_efficiency();
    for (std::size_t n = 0; n < day.intervals; ++n) {
      const double y = day.block_y[(n / pulse) * day.width + lane];
      const double x_n = day.usage[n * day.width + lane];
      const double level = day.levels[n * day.width + lane];
      const double delta = ce * y - x_n / de;
      const double next = level + delta;
      if (next > cap) {
        wasted += next - cap;
      } else if (next < 0.0) {
        grid_extra += -next * de;
      }
    }
  }
  battery_.restore(lanes.level(lane),
                   battery_.violation_count() + day_violations, wasted,
                   grid_extra);

  savings_cents_ += day.savings_cents[lane];
  bill_cents_ += day.bill_cents[lane];
  usage_cost_cents_ += day.usage_cost_cents[lane];
  ++days_;
  pending_.clear();
}

void HouseholdSession::save(std::ostream& out) const {
  RLBLH_REQUIRE(!day_open(),
                "serve session: checkpoint only between days (the open "
                "day's intervals are replayed by the client on resume)");
  out << kMagic << '\n';
  out << "id " << id_ << '\n';
  out << "spec " << spec_text_ << '\n';
  const auto precision = out.precision(17);
  out << "days " << days_ << " cum " << savings_cents_ << ' ' << bill_cents_
      << ' ' << usage_cost_cents_ << '\n';
  out.precision(precision);
  save_battery(out, battery_);
  policy_->save_state(out);
  out << "end rlblh-serve-household\n";
}

std::unique_ptr<HouseholdSession> HouseholdSession::restore(
    std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw DataError("serve checkpoint: missing or wrong header (expected '" +
                    std::string(kMagic) + "')");
  }
  std::uint64_t id = 0;
  {
    std::string word;
    if (!(in >> word >> id) || word != "id") {
      throw DataError("serve checkpoint: malformed id line");
    }
  }
  std::string spec_text;
  {
    std::string word;
    if (!(in >> word) || word != "spec" || !(in >> std::ws) ||
        !std::getline(in, spec_text) || spec_text.empty()) {
      throw DataError("serve checkpoint: malformed spec line");
    }
  }
  std::size_t days = 0;
  double savings = 0.0, bill = 0.0, usage_cost = 0.0;
  {
    std::string days_word, cum_word;
    if (!(in >> days_word >> days >> cum_word >> savings >> bill >>
          usage_cost) ||
        days_word != "days" || cum_word != "cum") {
      throw DataError("serve checkpoint: malformed totals line");
    }
  }

  auto session = std::unique_ptr<HouseholdSession>(new HouseholdSession());
  session->id_ = id;
  try {
    session->spec_ = ScenarioSpec::parse(spec_text);
  } catch (const ConfigError& e) {
    throw DataError(std::string("serve checkpoint: bad spec: ") + e.what());
  }
  session->spec_text_ = session->spec_.canonical();
  session->build_components();
  session->days_ = days;
  session->savings_cents_ = savings;
  session->bill_cents_ = bill;
  session->usage_cost_cents_ = usage_cost;

  load_battery(in, session->battery_);
  in >> std::ws;
  session->policy_->load_state(in);
  std::string end_word, end_name;
  if (!(in >> end_word >> end_name) || end_word != "end" ||
      end_name != "rlblh-serve-household") {
    throw DataError("serve checkpoint: missing end marker");
  }
  return session;
}

}  // namespace rlblh::serve
