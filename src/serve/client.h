// Synchronous client for the rlblh_serve protocol, with reconnect.
//
// One ServeClient is one connection multiplexing any number of household
// ids (every frame carries its id). Calls are strict request/response; a
// server Error frame surfaces as ServeRequestError so callers can
// distinguish "the server rejected this request" (re-sync and continue)
// from transport failure (reconnect with decorrelated-jitter backoff and
// replay — the load generator's loop).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/backoff.h"
#include "serve/protocol.h"
#include "util/error.h"

namespace rlblh::serve {

/// The server answered with an Error frame (the connection stays up).
class ServeRequestError : public DataError {
 public:
  ServeRequestError(ErrorCode code, const std::string& message)
      : DataError("serve request rejected: " + message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

class ServeClient {
 public:
  /// Prepares a client for the endpoint; connect() establishes the socket.
  /// `backoff_seed` seeds the reconnect jitter (distinct per client so a
  /// herd decorrelates).
  ServeClient(std::string endpoint, std::uint64_t backoff_seed,
              std::chrono::milliseconds backoff_base =
                  std::chrono::milliseconds(10),
              std::chrono::milliseconds backoff_cap =
                  std::chrono::milliseconds(2000));
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects, retrying with backoff up to `max_attempts`. Throws DataError
  /// when every attempt fails.
  void connect(std::size_t max_attempts = 10);

  /// Drops the socket (reconnect() = connect()).
  void disconnect();

  bool connected() const { return fd_ >= 0; }

  /// Number of (re)connect attempts that failed so far (for tests).
  std::size_t failed_attempts() const { return failed_attempts_; }

  // --- requests (throw DataError on transport loss,
  //     ServeRequestError on server rejection) ---------------------------
  HelloAckMsg hello(std::uint64_t household_id, const std::string& spec);
  ReadingsAckMsg send_readings(std::uint64_t household_id, std::uint32_t day,
                               std::uint32_t first_interval,
                               const std::vector<double>& values);
  CheckpointAckMsg checkpoint(std::uint64_t household_id);
  StatsAckMsg stats(std::uint64_t household_id);
  ByeAckMsg bye(std::uint64_t household_id);

  /// Round-trip time of the most recent successful request.
  std::chrono::nanoseconds last_rtt() const { return last_rtt_; }

 private:
  Frame round_trip(const std::vector<std::uint8_t>& request);

  std::string endpoint_;
  DecorrelatedJitterBackoff backoff_;
  int fd_ = -1;
  std::size_t failed_attempts_ = 0;
  FrameReader reader_;
  std::chrono::nanoseconds last_rtt_{0};
};

}  // namespace rlblh::serve
