// One served household: scenario components + streaming day loop + totals.
//
// A HouseholdSession is the daemon-side mirror of what build_scenario wires
// up for a batch run — the same registries build the policy and price
// schedule from the same spec string, the battery starts at b_M / 2 — but
// the day loop is the push-driven StreamEngine, fed by Readings frames as
// they arrive. Because StreamEngine is bitwise-identical to SimEngine, a
// session that has consumed D days of a household's usage holds exactly the
// policy/battery/RNG state a batch SimEngine run over the same D days would
// hold (serve/server_test.cc pins this differentially).
//
// Checkpoint contract: save() is only legal between days (the policy's
// day-scoped state is empty there — DESIGN.md §15); a session restored from
// save()'s output continues bitwise-identically. The client replays the
// day that was open when the daemon died.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "battery/battery.h"
#include "core/policy.h"
#include "pricing/tou.h"
#include "sim/scenario.h"
#include "sim/stream_engine.h"

namespace rlblh::serve {

class HouseholdSession {
 public:
  /// Builds the household from a ScenarioSpec string via the registries.
  /// Throws ConfigError when the spec is invalid or names a policy without
  /// checkpoint support (every served policy must be restorable).
  HouseholdSession(std::uint64_t id, const std::string& spec_text);

  /// Rebuilds a session from a checkpoint stream written by save().
  /// Throws DataError on malformed input.
  static std::unique_ptr<HouseholdSession> restore(std::istream& in);

  std::uint64_t id() const { return id_; }

  /// Canonical spec string (the session's identity; a reconnecting client
  /// must present a spec with the same canonical form).
  const std::string& spec_text() const { return spec_text_; }

  std::size_t days_completed() const { return days_; }
  bool day_open() const { return engine_.day_open(); }

  /// Interval the next reading must carry (0 when no day is open).
  std::size_t next_interval() const { return engine_.next_interval(); }

  std::size_t intervals_per_day() const { return prices_.intervals(); }

  /// Applies a contiguous run of usage values at (day, first_interval).
  /// Opens the day on interval 0, closes it after the last interval. A
  /// frame must not cross a day boundary. Throws ConfigError when the
  /// cursor does not match the session (the server answers kOutOfOrder).
  /// Returns true when this call completed a day.
  bool apply_readings(std::uint32_t day, std::uint32_t first_interval,
                      std::span<const double> values);

  double savings_cents() const { return savings_cents_; }
  double bill_cents() const { return bill_cents_; }
  double usage_cost_cents() const { return usage_cost_cents_; }
  double battery_level() const { return battery_.level(); }

  /// The live policy (differential tests compare its serialized state
  /// against a batch run's).
  const BlhPolicy& policy() const { return *policy_; }

  /// Writes the full between-days state (spec, counters, cumulative cents,
  /// battery, policy). Throws ConfigError while a day is open.
  void save(std::ostream& out) const;

 private:
  explicit HouseholdSession() = default;
  void build_components();

  std::uint64_t id_ = 0;
  std::string spec_text_;
  ScenarioSpec spec_;
  TouSchedule prices_ = TouSchedule::flat(1, 0.0);  ///< replaced in build
  Battery battery_{1.0};
  std::unique_ptr<BlhPolicy> policy_;
  StreamEngine engine_;

  std::size_t days_ = 0;
  double savings_cents_ = 0.0;
  double bill_cents_ = 0.0;
  double usage_cost_cents_ = 0.0;
};

}  // namespace rlblh::serve
