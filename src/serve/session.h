// One served household: scenario components + streaming day loop + totals.
//
// A HouseholdSession is the daemon-side mirror of what build_scenario wires
// up for a batch run — the same registries build the policy and price
// schedule from the same spec string, the battery starts at b_M / 2 — but
// the day loop is the push-driven StreamEngine, fed by Readings frames as
// they arrive. Because StreamEngine is bitwise-identical to SimEngine, a
// session that has consumed D days of a household's usage holds exactly the
// policy/battery/RNG state a batch SimEngine run over the same D days would
// hold (serve/server_test.cc pins this differentially).
//
// Checkpoint contract: save() is only legal between days (the policy's
// day-scoped state is empty there — DESIGN.md §15); a session restored from
// save()'s output continues bitwise-identically. The client replays the
// day that was open when the daemon died.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "battery/battery.h"
#include "core/policy.h"
#include "pricing/tou.h"
#include "sim/batch_engine.h"
#include "sim/scenario.h"
#include "sim/stream_engine.h"

namespace rlblh::serve {

class HouseholdSession {
 public:
  /// Builds the household from a ScenarioSpec string via the registries.
  /// Throws ConfigError when the spec is invalid or names a policy without
  /// checkpoint support (every served policy must be restorable).
  HouseholdSession(std::uint64_t id, const std::string& spec_text);

  /// Rebuilds a session from a checkpoint stream written by save().
  /// Throws DataError on malformed input.
  static std::unique_ptr<HouseholdSession> restore(std::istream& in);

  std::uint64_t id() const { return id_; }

  /// Canonical spec string (the session's identity; a reconnecting client
  /// must present a spec with the same canonical form).
  const std::string& spec_text() const { return spec_text_; }

  /// Seed-independent canonical form (seed zeroed, hseed cleared): two
  /// sessions with equal keys are same-blueprint and may share BatchEngine
  /// lanes — the serve-side mirror of make_scenario_blueprint's contract.
  const std::string& blueprint_key() const { return blueprint_key_; }

  std::size_t days_completed() const { return days_; }
  bool day_open() const { return engine_.day_open() || !pending_.empty(); }

  /// Interval the next reading must carry (0 when no day is open). The
  /// engine's cursor only counts while its day is open — StreamEngine
  /// leaves n_ at the day length after finish_day() until the next
  /// begin_day() resets it.
  std::size_t next_interval() const {
    return (engine_.day_open() ? engine_.next_interval() : 0) +
           pending_.size();
  }

  std::size_t intervals_per_day() const { return prices_.intervals(); }

  /// Applies a contiguous run of usage values at (day, first_interval).
  /// Opens the day on interval 0, closes it after the last interval. A
  /// frame must not cross a day boundary. Throws ConfigError when the
  /// cursor does not match the session (the server answers kOutOfOrder).
  /// Returns true when this call completed a day.
  bool apply_readings(std::uint32_t day, std::uint32_t first_interval,
                      std::span<const double> values);

  double savings_cents() const { return savings_cents_; }
  double bill_cents() const { return bill_cents_; }
  double usage_cost_cents() const { return usage_cost_cents_; }
  double battery_level() const { return battery_.level(); }

  /// The live policy (differential tests compare its serialized state
  /// against a batch run's).
  const BlhPolicy& policy() const { return *policy_; }

  // --- deferred-day protocol (event-loop shards) ------------------------
  //
  // A shard defers stepping: apply_readings() only validates and buffers,
  // and the shard decides at day close whether the buffered day runs
  // through the StreamEngine (singleton) or as one lane of a BatchEngine
  // staged day (co-resident same-blueprint group). Validation reproduces
  // the eager path's checks, messages and partial-application cursor
  // exactly, so replies are byte-identical; the stepped state is identical
  // because a pulse policy commits each block before the block's usage
  // exists — deferring the arithmetic cannot change any value it reads.

  /// Switches the session to deferred buffering (set once, right after
  /// construction/restore; never with a day open).
  void set_deferred(bool on);
  bool deferred() const { return deferred_; }

  /// Buffered-but-unstepped usage of the open deferred day.
  std::span<const double> pending_usage() const { return pending_; }

  /// True when a deferred day is fully buffered and awaits finalization.
  bool day_complete() const {
    return !pending_.empty() && next_interval() == prices_.intervals();
  }

  /// True when the complete day can run as a batch lane: nothing of it has
  /// been stepped through the StreamEngine (no mid-day Stats flush).
  bool batch_eligible() const {
    return day_complete() && !engine_.day_open();
  }

  /// Steps every buffered interval through the StreamEngine (opening the
  /// day if needed) without closing the day — the Stats path uses this so
  /// mid-day battery/cents queries match the eager path bitwise.
  void flush_pending_to_stream();

  /// Closes a complete deferred day through the StreamEngine (flush +
  /// finish_day + totals), the singleton/fallback finalizer.
  void finalize_day_stream();

  /// Absorbs lane `lane` of a finished BatchEngine staged day: money
  /// totals, battery restore (with the wasted/grid-extra replay for
  /// violated lanes) and the day counter. The policy advanced in the batch
  /// run itself. Requires batch_eligible() beforehand.
  void absorb_batch_lane(const BatchDay& day, const BatteryLanes& lanes,
                         std::size_t lane);

  /// Mutable policy handle for packing BatchEngine lane spans.
  BlhPolicy& policy_mut() { return *policy_; }

  const TouSchedule& prices() const { return prices_; }
  const Battery& battery() const { return battery_; }

  /// Writes the full between-days state (spec, counters, cumulative cents,
  /// battery, policy). Throws ConfigError while a day is open.
  void save(std::ostream& out) const;

 private:
  explicit HouseholdSession() = default;
  void build_components();

  std::uint64_t id_ = 0;
  std::string spec_text_;
  std::string blueprint_key_;
  ScenarioSpec spec_;
  TouSchedule prices_ = TouSchedule::flat(1, 0.0);  ///< replaced in build
  Battery battery_{1.0};
  std::unique_ptr<BlhPolicy> policy_;
  StreamEngine engine_;

  bool deferred_ = false;
  std::vector<double> pending_;  ///< validated, not-yet-stepped usage

  std::size_t days_ = 0;
  double savings_cents_ = 0.0;
  double bill_cents_ = 0.0;
  double usage_cost_cents_ = 0.0;
};

}  // namespace rlblh::serve
