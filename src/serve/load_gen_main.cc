// load_gen — drives simulated households against a running rlblh_serve.
//
//   load_gen --endpoint unix:/tmp/rlblh.sock --households 50 --days 2
//
// Deterministic per-household usage streams (see serve/load_gen.h), client
// RTT percentiles on stdout, optional JSON for scripts. Exit 0 only when
// every household reached the target day count.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "serve/load_gen.h"
#include "util/error.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --endpoint unix:PATH|tcp:PORT [--households N] [--days D]\n"
      "          [--spec SCENARIO] [--seed-base S] [--batch INTERVALS]\n"
      "          [--threads T] [--no-final-checkpoint] [--json PATH]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rlblh::serve::LoadGenConfig config;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--endpoint" && has_value) {
      config.endpoint = argv[++i];
    } else if (arg == "--households" && has_value) {
      config.households =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--days" && has_value) {
      config.days =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--spec" && has_value) {
      config.base_spec = argv[++i];
    } else if (arg == "--seed-base" && has_value) {
      config.seed_base = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--batch" && has_value) {
      config.batch_intervals =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--threads" && has_value) {
      config.threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--no-final-checkpoint") {
      config.final_checkpoint = false;
    } else if (arg == "--json" && has_value) {
      json_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (config.endpoint.empty()) return usage(argv[0]);

  try {
    const rlblh::serve::LoadGenResult result = rlblh::serve::run_load(config);
    const double p50 = result.rtt_quantile(0.50);
    const double p99 = result.rtt_quantile(0.99);
    const double steps_per_sec =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.intervals_sent) / result.wall_seconds
            : 0.0;
    std::printf("load_gen: %zu households, %zu days, %zu intervals, "
                "%zu frames, %zu reconnects, %zu draining waits\n",
                result.households, result.days_completed,
                result.intervals_sent, result.frames_sent,
                result.reconnects, result.draining_waits);
    std::printf("load_gen: %.2f s wall, %.0f intervals/s, "
                "rtt p50 %.1f us, p99 %.1f us\n",
                result.wall_seconds, steps_per_sec, p50, p99);
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "load_gen: cannot write '%s'\n",
                     json_path.c_str());
        return 1;
      }
      out << "{\n"
          << "  \"households\": " << result.households << ",\n"
          << "  \"days_completed\": " << result.days_completed << ",\n"
          << "  \"intervals_sent\": " << result.intervals_sent << ",\n"
          << "  \"frames_sent\": " << result.frames_sent << ",\n"
          << "  \"reconnects\": " << result.reconnects << ",\n"
          << "  \"draining_waits\": " << result.draining_waits << ",\n"
          << "  \"wall_seconds\": " << result.wall_seconds << ",\n"
          << "  \"intervals_per_sec\": " << steps_per_sec << ",\n"
          << "  \"rtt_p50_us\": " << p50 << ",\n"
          << "  \"rtt_p99_us\": " << p99 << "\n"
          << "}\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load_gen: %s\n", e.what());
    return 1;
  }
}
