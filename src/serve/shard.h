// Session shard: the single-writer worker of the event-loop server.
//
// The reactor hashes every frame's household id to a fixed shard, so one
// worker thread owns each session outright — per-session state needs no
// lock, and each household's frames are processed in arrival order (the
// same determinism argument as the fleet executor's chunk wall: one writer
// per household, lanes never mix).
//
// Batch stepping: within one queue drain the shard defers day-closing
// Readings frames to the end of the drain, groups the deferred sessions by
// blueprint key (same spec modulo seeds), and steps groups of >= 2 through
// BatchEngine lanes staged from the sessions' buffered usage — singletons
// and sessions whose day was partially streamed (mid-day Stats) fall back
// to the per-household StreamEngine. Every reply and checkpoint byte is
// bit-identical to the thread-per-connection path: the lane kernels are
// bitwise the stream kernels (DESIGN.md §14), a pulse policy commits each
// block before the block's usage exists (so deferral changes no value it
// reads), and per-connection reply order is preserved by slotting deferred
// acks back into arrival order before the drain's replies flush.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "battery/battery.h"
#include "serve/checkpoint.h"
#include "serve/reactor.h"
#include "serve/session.h"
#include "sim/batch_engine.h"

namespace rlblh::serve {

class Shard {
 public:
  struct Config {
    CheckpointStore* store = nullptr;
    Reactor* reactor = nullptr;
    std::size_t checkpoint_period_days = 1;
    std::size_t batch_width = 32;  ///< max lanes per staged day; < 2 disables
    std::atomic<bool>* draining = nullptr;
    std::atomic<std::size_t>* malformed = nullptr;
    std::atomic<std::size_t>* days_completed = nullptr;
    std::atomic<std::size_t>* checkpoints = nullptr;
    std::atomic<std::size_t>* batch_days = nullptr;  ///< lane-stepped closes
  };

  explicit Shard(Config config);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  void start();

  /// Queues one decoded frame payload (reactor thread). Frames from one
  /// connection arrive in order and stay in order.
  void post(std::shared_ptr<Conn> conn, std::vector<std::uint8_t>&& payload);

  /// Asks the worker to exit. With `drain_queue` the worker first processes
  /// everything already queued (graceful stop); without, the queue is
  /// discarded (crash simulation). Call join() afterwards.
  void stop(bool drain_queue);
  void join();

  /// Number of sessions this shard owns (worker must be stopped or idle).
  std::size_t session_count() const;

  /// Iterates the owned sessions after join() (drain checkpoint pass).
  void for_each_session(
      const std::function<void(HouseholdSession&, std::size_t&)>& fn);

 private:
  struct Item {
    std::shared_ptr<Conn> conn;
    std::vector<std::uint8_t> payload;
  };

  struct Entry {
    std::unique_ptr<HouseholdSession> session;
    std::size_t checkpointed_days = 0;
  };

  /// Reply sink for one connection within a drain: replies go straight to
  /// the reactor until a deferred day-close opens a slot, after which this
  /// conn's replies queue in arrival order behind it. A deque keeps
  /// references stable as chunks append — PendingClose::slot points at an
  /// element while later frames keep growing the queue.
  struct ConnOut {
    std::shared_ptr<Conn> conn;
    std::deque<std::vector<std::uint8_t>> chunks;
    bool blocked = false;
  };

  struct PendingClose {
    std::uint64_t id = 0;
    Entry* entry = nullptr;
    std::vector<std::uint8_t>* slot = nullptr;  ///< reply bytes go here
    bool done = false;
  };

  struct DrainState {
    std::unordered_map<Conn*, ConnOut> outs;
    std::vector<PendingClose> closes;
    std::unordered_map<std::uint64_t, std::size_t> close_by_id;
  };

  void run();
  void process_drain(std::vector<Item>& items);
  void process_item(DrainState& state, Item& item);
  void emit(DrainState& state, const std::shared_ptr<Conn>& conn,
            std::vector<std::uint8_t>&& bytes);
  /// Finalizes the session's pending close now (stream path) so a later
  /// frame in the same drain sees post-close state.
  void force_finalize(DrainState& state, std::uint64_t id);
  void finalize_close(PendingClose& close);
  void finalize_drain(DrainState& state);
  void step_batch_group(std::vector<PendingClose*>& group);

  Config config_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> sessions_;

  BatchEngine batch_engine_;
  BatteryLanes battery_lanes_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Item> queue_;
  bool stop_requested_ = false;
  bool drain_on_stop_ = true;
  std::thread thread_;
};

/// The household -> shard hash (splitmix64 finalizer): uncorrelated with
/// sequential id assignment so fleets spread evenly.
std::size_t shard_for_household(std::uint64_t id, std::size_t nshards);

}  // namespace rlblh::serve
