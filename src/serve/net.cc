#include "serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/error.h"

namespace rlblh::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw DataError(what + ": " + std::strerror(errno));
}

bool is_unix(const std::string& endpoint) {
  return endpoint.rfind("unix:", 0) == 0;
}

bool is_tcp(const std::string& endpoint) {
  return endpoint.rfind("tcp:", 0) == 0;
}

sockaddr_un unix_addr(const std::string& endpoint) {
  const std::string path = endpoint.substr(5);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw DataError("serve net: bad unix socket path '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const std::string& endpoint) {
  const std::string port_text = endpoint.substr(4);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || *end != '\0' || port < 0 || port > 65535) {
    throw DataError("serve net: bad tcp port '" + port_text + "'");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

}  // namespace

int listen_endpoint(const std::string& endpoint, std::string* actual) {
  int fd = -1;
  if (is_unix(endpoint)) {
    const sockaddr_un addr = unix_addr(endpoint);
    ::unlink(addr.sun_path);  // stale socket from a SIGKILLed daemon
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("serve net: socket(AF_UNIX)");
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      close_quietly(fd);
      throw_errno("serve net: bind '" + endpoint + "'");
    }
    if (actual) *actual = endpoint;
  } else if (is_tcp(endpoint)) {
    sockaddr_in addr = tcp_addr(endpoint);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("serve net: socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      close_quietly(fd);
      throw_errno("serve net: bind '" + endpoint + "'");
    }
    if (actual) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
        close_quietly(fd);
        throw_errno("serve net: getsockname");
      }
      *actual = "tcp:" + std::to_string(ntohs(bound.sin_port));
    }
  } else {
    throw DataError("serve net: endpoint must be unix:PATH or tcp:PORT, got '" +
                    endpoint + "'");
  }
  if (::listen(fd, 128) < 0) {
    close_quietly(fd);
    throw_errno("serve net: listen '" + endpoint + "'");
  }
  return fd;
}

int connect_endpoint(const std::string& endpoint) {
  if (is_unix(endpoint)) {
    const sockaddr_un addr = unix_addr(endpoint);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("serve net: socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      close_quietly(fd);
      throw_errno("serve net: connect '" + endpoint + "'");
    }
    return fd;
  }
  if (is_tcp(endpoint)) {
    const sockaddr_in addr = tcp_addr(endpoint);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("serve net: socket(AF_INET)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      close_quietly(fd);
      throw_errno("serve net: connect '" + endpoint + "'");
    }
    return fd;
  }
  throw DataError("serve net: endpoint must be unix:PATH or tcp:PORT, got '" +
                  endpoint + "'");
}

void send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve net: send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t recv_some(int fd, std::uint8_t* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve net: recv");
    }
    return static_cast<std::size_t>(n);
  }
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("serve net: set O_NONBLOCK");
  }
}

std::size_t raise_fd_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) < 0) return 0;
  if (lim.rlim_cur < lim.rlim_max) {
    rlimit raised = lim;
    raised.rlim_cur = lim.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

void unlink_endpoint(const std::string& endpoint) {
  if (is_unix(endpoint)) ::unlink(endpoint.substr(5).c_str());
}

}  // namespace rlblh::serve
