#include "serve/shard.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <span>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "serve/protocol.h"
#include "sim/scenario.h"
#include "util/error.h"

namespace rlblh::serve {

std::size_t shard_for_household(std::uint64_t id, std::size_t nshards) {
  // splitmix64 finalizer: full-avalanche, so sequential fleet ids spread.
  std::uint64_t x = id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % nshards);
}

Shard::Shard(Config config) : config_(std::move(config)) {}

void Shard::start() {
  thread_ = std::thread([this] { run(); });
}

void Shard::post(std::shared_ptr<Conn> conn,
                 std::vector<std::uint8_t>&& payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Item{std::move(conn), std::move(payload)});
  }
  cv_.notify_one();
}

void Shard::stop(bool drain_queue) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
    drain_on_stop_ = drain_queue;
  }
  cv_.notify_one();
}

void Shard::join() {
  if (thread_.joinable()) thread_.join();
}

std::size_t Shard::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void Shard::for_each_session(
    const std::function<void(HouseholdSession&, std::size_t&)>& fn) {
  for (auto& [id, entry] : sessions_) {
    fn(*entry->session, entry->checkpointed_days);
  }
}

void Shard::run() {
  std::vector<Item> items;
  for (;;) {
    bool stopping;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_requested_ || !queue_.empty(); });
      stopping = stop_requested_;
      if (stopping && !drain_on_stop_) return;  // crash simulation
      items.swap(queue_);
    }
    if (!items.empty()) process_drain(items);
    items.clear();
    // After a graceful stop the reactor has already joined, so nothing can
    // enqueue behind the swap we just drained.
    if (stopping) return;
  }
}

void Shard::process_drain(std::vector<Item>& items) {
  DrainState state;
  for (Item& item : items) process_item(state, item);
  finalize_drain(state);
}

void Shard::emit(DrainState& state, const std::shared_ptr<Conn>& conn,
                 std::vector<std::uint8_t>&& bytes) {
  auto it = state.outs.find(conn.get());
  if (it != state.outs.end() && it->second.blocked) {
    it->second.chunks.push_back(std::move(bytes));
    return;
  }
  config_.reactor->send(conn, bytes.data(), bytes.size());
}

void Shard::force_finalize(DrainState& state, std::uint64_t id) {
  auto it = state.close_by_id.find(id);
  if (it == state.close_by_id.end()) return;
  PendingClose& close = state.closes[it->second];
  if (!close.done) {
    close.entry->session->finalize_day_stream();
    finalize_close(close);
  }
  state.close_by_id.erase(it);
}

void Shard::process_item(DrainState& state, Item& item) {
  std::vector<std::uint8_t> out;
  Frame frame;
  try {
    frame = decode_payload(item.payload.data(), item.payload.size());
  } catch (const DataError& e) {
    // A malformed body inside an intact frame: reject it, keep the
    // connection — framing is still synchronized.
    config_.malformed->fetch_add(1);
    RLBLH_OBS_COUNT("serve.malformed_frames", 1);
    encode_error(out, {ErrorCode::kMalformedFrame, e.what()});
    emit(state, item.conn, std::move(out));
    return;
  }
  RLBLH_OBS_COUNT("serve.frames", 1);

  switch (frame.type) {
    case MessageType::kHello: {
      if (config_.draining->load()) {
        encode_error(out, {ErrorCode::kDraining, "server is draining"});
        break;
      }
      const std::uint64_t id = frame.hello.household_id;
      force_finalize(state, id);
      std::unique_ptr<HouseholdSession> fresh;
      bool resumed = false;
      try {
        if (config_.store->exists(id)) {
          fresh = config_.store->load(id);
          resumed = true;
          // The client must agree on what this household is.
          const std::string wanted =
              ScenarioSpec::parse(frame.hello.spec).canonical();
          if (wanted != fresh->spec_text()) {
            encode_error(out, {ErrorCode::kBadSpec,
                               "spec does not match the checkpoint for id " +
                                   std::to_string(id)});
            break;
          }
        } else {
          fresh = std::make_unique<HouseholdSession>(id, frame.hello.spec);
        }
      } catch (const ConfigError& e) {
        encode_error(out, {ErrorCode::kBadSpec, e.what()});
        break;
      } catch (const DataError& e) {
        encode_error(out, {ErrorCode::kInternal, e.what()});
        break;
      }
      fresh->set_deferred(true);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        auto entry = std::make_unique<Entry>();
        entry->session = std::move(fresh);
        entry->checkpointed_days = entry->session->days_completed();
        std::lock_guard<std::mutex> lock(mu_);
        it = sessions_.emplace(id, std::move(entry)).first;
      }
      // An id that is already live (client reconnected before we noticed
      // the old socket die) keeps its in-memory session — it is strictly
      // newer than any checkpoint.
      HouseholdSession& s = *it->second->session;
      HelloAckMsg ack;
      ack.household_id = id;
      ack.days_completed = static_cast<std::uint32_t>(s.days_completed());
      ack.next_interval = static_cast<std::uint32_t>(s.next_interval());
      ack.day_open = s.day_open() ? 1 : 0;
      ack.resumed = resumed ? 1 : 0;
      encode_hello_ack(out, ack);
      RLBLH_OBS_COUNT("serve.hellos", 1);
      break;
    }
    case MessageType::kReadings: {
      const std::uint64_t id = frame.readings.household_id;
      force_finalize(state, id);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        encode_error(out, {ErrorCode::kUnknownHousehold,
                           "no session for id " + std::to_string(id)});
        break;
      }
      const auto t0 = std::chrono::steady_clock::now();
      Entry& entry = *it->second;
      HouseholdSession& s = *entry.session;
      bool day_done = false;
      try {
        day_done = s.apply_readings(
            frame.readings.day, frame.readings.first_interval,
            std::span<const double>(frame.readings.values));
      } catch (const ConfigError& e) {
        encode_error(out, {ErrorCode::kOutOfOrder, e.what()});
        break;
      }
      RLBLH_OBS_COUNT("serve.readings", frame.readings.values.size());
      if (day_done) {
        // Defer the close to the end of the drain: co-resident
        // same-blueprint closes step as BatchEngine lanes there. The ack
        // is built at finalize time and slotted back into arrival order.
        auto& conn_out = state.outs[item.conn.get()];
        if (conn_out.conn == nullptr) conn_out.conn = item.conn;
        conn_out.blocked = true;
        conn_out.chunks.emplace_back();
        PendingClose close;
        close.id = id;
        close.entry = &entry;
        close.slot = &conn_out.chunks.back();
        state.close_by_id[id] = state.closes.size();
        state.closes.push_back(close);
        return;
      }
      ReadingsAckMsg ack;
      ack.household_id = id;
      ack.day = static_cast<std::uint32_t>(s.days_completed());
      ack.next_interval = static_cast<std::uint32_t>(s.next_interval());
      ack.day_completed = 0;
      encode_readings_ack(out, ack);
      const auto dt = std::chrono::steady_clock::now() - t0;
      const double us = std::chrono::duration<double, std::micro>(dt).count() /
                        static_cast<double>(std::max<std::size_t>(
                            frame.readings.values.size(), 1));
      RLBLH_OBS_OBSERVE("serve.step_latency_us", us);
      break;
    }
    case MessageType::kCheckpoint: {
      const std::uint64_t id = frame.checkpoint.household_id;
      force_finalize(state, id);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        encode_error(out, {ErrorCode::kUnknownHousehold,
                           "no session for id " + std::to_string(id)});
        break;
      }
      Entry& entry = *it->second;
      HouseholdSession& s = *entry.session;
      if (s.day_open()) {
        encode_error(out, {ErrorCode::kOutOfOrder,
                           "cannot checkpoint mid-day (finish the day "
                           "first)"});
        break;
      }
      config_.store->save(s);
      entry.checkpointed_days = s.days_completed();
      config_.checkpoints->fetch_add(1);
      RLBLH_OBS_COUNT("serve.checkpoints", 1);
      CheckpointAckMsg ack;
      ack.household_id = id;
      ack.days_completed = static_cast<std::uint32_t>(s.days_completed());
      encode_checkpoint_ack(out, ack);
      break;
    }
    case MessageType::kStats: {
      const std::uint64_t id = frame.stats.household_id;
      force_finalize(state, id);
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        encode_error(out, {ErrorCode::kUnknownHousehold,
                           "no session for id " + std::to_string(id)});
        break;
      }
      HouseholdSession& s = *it->second->session;
      // A mid-day Stats must report the stepped battery level, so the
      // buffered part of the open day streams through the engine now (the
      // day then finishes via the stream path — state is already bitwise
      // the eager path's).
      s.flush_pending_to_stream();
      StatsAckMsg ack;
      ack.household_id = id;
      ack.days_completed = static_cast<std::uint32_t>(s.days_completed());
      ack.savings_cents = s.savings_cents();
      ack.bill_cents = s.bill_cents();
      ack.usage_cost_cents = s.usage_cost_cents();
      ack.battery_level_kwh = s.battery_level();
      encode_stats_ack(out, ack);
      break;
    }
    case MessageType::kBye: {
      ByeAckMsg ack;
      ack.household_id = frame.bye.household_id;
      encode_bye_ack(out, ack);
      break;
    }
    default:
      // Server-bound protocol only; acks arriving here are client bugs.
      config_.malformed->fetch_add(1);
      encode_error(out, {ErrorCode::kMalformedFrame,
                         "unexpected message type on server"});
      break;
  }
  emit(state, item.conn, std::move(out));
}

void Shard::finalize_close(PendingClose& close) {
  HouseholdSession& s = *close.entry->session;
  config_.days_completed->fetch_add(1);
  RLBLH_OBS_COUNT("serve.days_completed", 1);
  if (s.days_completed() % config_.checkpoint_period_days == 0) {
    // Persist before acking: an acked closed day is on disk.
    config_.store->save(s);
    close.entry->checkpointed_days = s.days_completed();
    config_.checkpoints->fetch_add(1);
    RLBLH_OBS_COUNT("serve.checkpoints", 1);
  }
  ReadingsAckMsg ack;
  ack.household_id = close.id;
  ack.day = static_cast<std::uint32_t>(s.days_completed());
  ack.next_interval = static_cast<std::uint32_t>(s.next_interval());
  ack.day_completed = 1;
  close.slot->clear();
  encode_readings_ack(*close.slot, ack);
  close.done = true;
}

void Shard::step_batch_group(std::vector<PendingClose*>& group) {
  const std::size_t width = group.size();
  HouseholdSession& first = *group[0]->entry->session;
  const std::size_t n_m = first.intervals_per_day();

  double* usage = batch_engine_.stage_usage(width, n_m);
  std::vector<BlhPolicy*> policies(width);
  for (std::size_t k = 0; k < width; ++k) {
    HouseholdSession& s = *group[k]->entry->session;
    const std::span<const double> pending = s.pending_usage();
    for (std::size_t n = 0; n < n_m; ++n) usage[n * width + k] = pending[n];
    policies[k] = &s.policy_mut();
  }

  const Battery& model = first.battery();
  battery_lanes_.reset(width, model.capacity(), model.capacity() / 2.0,
                       model.charge_efficiency(),
                       model.discharge_efficiency());
  double* levels = battery_lanes_.levels();
  for (std::size_t k = 0; k < width; ++k) {
    levels[k] = group[k]->entry->session->battery().level();
  }

  const BatchDay& day = batch_engine_.run_staged_day(
      first.prices(), battery_lanes_,
      std::span<BlhPolicy* const>(policies.data(), width));
  for (std::size_t k = 0; k < width; ++k) {
    group[k]->entry->session->absorb_batch_lane(day, battery_lanes_, k);
    finalize_close(*group[k]);
  }
  config_.batch_days->fetch_add(width);
  RLBLH_OBS_COUNT("serve.batch_days", width);
}

void Shard::finalize_drain(DrainState& state) {
  // Group the still-pending closes by blueprint: same spec modulo seeds =>
  // identical day geometry, pricing, battery model and policy type, which
  // is exactly what BatchEngine's lane homogeneity checks demand. std::map
  // keys keep group order deterministic.
  std::map<std::string, std::vector<PendingClose*>> groups;
  for (PendingClose& close : state.closes) {
    if (close.done) continue;
    HouseholdSession& s = *close.entry->session;
    if (config_.batch_width >= 2 && s.batch_eligible() &&
        s.policy().pulse_width() > 0) {
      groups[s.blueprint_key()].push_back(&close);
    } else {
      s.finalize_day_stream();
      finalize_close(close);
    }
  }
  for (auto& [key, group] : groups) {
    std::size_t done = 0;
    while (done < group.size()) {
      const std::size_t width =
          std::min(config_.batch_width, group.size() - done);
      if (width < 2) {
        // A lone lane gains nothing from staging: stream it.
        PendingClose& close = *group[done];
        close.entry->session->finalize_day_stream();
        finalize_close(close);
        done += 1;
        continue;
      }
      std::vector<PendingClose*> chunk(group.begin() + static_cast<long>(done),
                                       group.begin() +
                                           static_cast<long>(done + width));
      step_batch_group(chunk);
      done += width;
    }
  }
  // Flush the blocked connections' replies, arrival order preserved.
  for (auto& [conn_ptr, conn_out] : state.outs) {
    for (std::vector<std::uint8_t>& chunk : conn_out.chunks) {
      if (!chunk.empty()) {
        config_.reactor->send(conn_out.conn, chunk.data(), chunk.size());
      }
    }
  }
}

}  // namespace rlblh::serve
