#include "privacy/nalm.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rlblh {

namespace {

struct Edge {
  std::size_t at = 0;   ///< interval index of the step (between at-1 and at)
  double height = 0.0;  ///< signed step size
};

bool powers_agree(double a, double b, double tolerance) {
  const double larger = std::max(std::abs(a), std::abs(b));
  if (larger <= 0.0) return true;
  return std::abs(a - b) / larger <= tolerance;
}

}  // namespace

std::vector<DetectedEvent> nalm_detect(const DayTrace& readings,
                                       const NalmConfig& config) {
  RLBLH_REQUIRE(config.edge_threshold > 0.0,
                "nalm_detect: edge threshold must be > 0");
  RLBLH_REQUIRE(config.power_tolerance >= 0.0,
                "nalm_detect: power tolerance must be >= 0");
  std::vector<Edge> edges;
  for (std::size_t n = 1; n < readings.intervals(); ++n) {
    const double step = readings.at(n) - readings.at(n - 1);
    if (std::abs(step) >= config.edge_threshold) {
      edges.push_back({n, step});
    }
  }
  // Pair each rising edge with the nearest subsequent falling edge of
  // similar magnitude; consumed falling edges cannot be reused.
  std::vector<bool> used(edges.size(), false);
  std::vector<DetectedEvent> events;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].height <= 0.0) continue;
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      if (used[j] || edges[j].height >= 0.0) continue;
      const std::size_t gap = edges[j].at - edges[i].at;
      if (gap > config.max_duration) break;
      if (powers_agree(edges[i].height, -edges[j].height,
                       config.power_tolerance)) {
        events.push_back({edges[i].at, gap,
                          0.5 * (edges[i].height - edges[j].height)});
        used[j] = true;
        break;
      }
    }
  }
  return events;
}

NalmScore nalm_score(const std::vector<DetectedEvent>& detected,
                     const std::vector<ApplianceEvent>& truth,
                     const NalmConfig& config) {
  NalmScore score;
  score.detected_events = detected.size();
  std::vector<bool> used(detected.size(), false);
  for (const auto& t : truth) {
    if (t.power < config.edge_threshold) continue;  // invisible to any detector
    ++score.true_events;
    for (std::size_t i = 0; i < detected.size(); ++i) {
      if (used[i]) continue;
      const auto& d = detected[i];
      const std::size_t t_end = t.start + t.duration;
      const std::size_t d_end = d.start + d.duration;
      const bool overlap = d.start < t_end && t.start < d_end;
      if (overlap && powers_agree(d.power, t.power, config.power_tolerance)) {
        used[i] = true;
        ++score.matched;
        break;
      }
    }
  }
  return score;
}

}  // namespace rlblh
