#include "privacy/mutual_information.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.h"

namespace rlblh {

namespace {

/// Plug-in Shannon entropy in bits, plus the number of occupied cells
/// (needed for the Miller-Madow bias correction).
struct EntropyEstimate {
  double bits = 0.0;
  std::size_t occupied = 0;
};

EntropyEstimate entropy_bits(const std::uint32_t* counts, std::size_t cells,
                             double total) {
  EntropyEstimate out;
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < cells; ++i) {
    const std::uint32_t c = counts[i];
    if (c == 0) continue;
    ++out.occupied;
    const double p = static_cast<double>(c) / total;
    out.bits -= p * std::log2(p);
  }
  return out;
}

/// Entropy over the occupied cells named by `cells` (ascending, unique) of
/// `counts`. Visits the same nonzero counts in the same order as a dense
/// scan that skips zeros, so the accumulated sum is bitwise identical.
EntropyEstimate entropy_bits_sparse(const std::uint32_t* counts,
                                    const std::vector<std::uint32_t>& cells,
                                    double total) {
  EntropyEstimate out;
  if (total <= 0.0) return out;
  for (const std::uint32_t cell : cells) {
    const std::uint32_t c = counts[cell];
    if (c == 0) continue;
    ++out.occupied;
    const double p = static_cast<double>(c) / total;
    out.bits -= p * std::log2(p);
  }
  return out;
}

/// Miller-Madow first-order bias correction: the plug-in estimator
/// under-estimates entropy by ~ (K - 1) / (2 N ln 2) bits for K occupied
/// cells and N samples.
double miller_madow(const EntropyEstimate& e, double samples) {
  if (samples <= 0.0 || e.occupied == 0) return e.bits;
  return e.bits + static_cast<double>(e.occupied - 1) /
                      (2.0 * samples * std::numbers::ln2);
}

}  // namespace

PairwiseMiEstimator::PairwiseMiEstimator(std::size_t intervals,
                                         std::size_t levels, double x_cap,
                                         double y_cap)
    : intervals_(intervals), levels_(levels), pair_cells_(levels * levels),
      joint_cells_(pair_cells_ * pair_cells_), qx_(levels, 0.0, x_cap),
      qy_(levels, 0.0, y_cap) {
  RLBLH_REQUIRE(intervals >= 2, "PairwiseMiEstimator: need >= 2 intervals");
  RLBLH_REQUIRE(levels >= 2, "PairwiseMiEstimator: need >= 2 levels");
  x_counts_.assign((intervals - 1) * pair_cells_, 0);
  joint_counts_.assign((intervals - 1) * joint_cells_, 0);
  joint_touched_.resize(intervals - 1);
}

void PairwiseMiEstimator::observe_day(ConstTraceLane usage,
                                      ConstTraceLane readings) {
  RLBLH_REQUIRE(usage.intervals() == intervals_ &&
                    readings.intervals() == intervals_,
                "PairwiseMiEstimator: day length mismatch");
  for (std::size_t n = 0; n + 1 < intervals_; ++n) {
    const std::size_t xi = pair_index(qx_.index(usage[n]),
                                      qx_.index(usage[n + 1]));
    const std::size_t yi = pair_index(qy_.index(readings[n]),
                                      qy_.index(readings[n + 1]));
    ++x_counts_[n * pair_cells_ + xi];
    const std::size_t cell = xi * pair_cells_ + yi;
    std::uint32_t& joint = joint_counts_[n * joint_cells_ + cell];
    if (joint == 0) {
      joint_touched_[n].push_back(static_cast<std::uint32_t>(cell));
    }
    ++joint;
  }
  ++days_;
}

void PairwiseMiEstimator::reset() {
  std::fill(x_counts_.begin(), x_counts_.end(), 0);
  for (std::size_t n = 0; n + 1 < intervals_; ++n) {
    std::uint32_t* const joint_row = joint_counts_.data() + n * joint_cells_;
    for (const std::uint32_t cell : joint_touched_[n]) {
      joint_row[cell] = 0;
    }
    joint_touched_[n].clear();
  }
  days_ = 0;
}

double PairwiseMiEstimator::normalized_mi_at(std::size_t n) const {
  RLBLH_REQUIRE(n + 1 < intervals_,
                "PairwiseMiEstimator: interval out of range");
  if (days_ == 0) return 0.0;
  const auto total = static_cast<double>(days_);
  const EntropyEstimate ex =
      entropy_bits(x_counts_.data() + n * pair_cells_, pair_cells_, total);
  if (ex.bits <= 0.0) return 0.0;  // deterministic usage pair: nothing leaks
  const std::uint32_t* const joint_row = joint_counts_.data() + n * joint_cells_;
  // The first-touch list is exactly the occupied joint set; sorting makes
  // the sparse entropy walk visit cells in the dense scan's ascending order
  // (idempotent, so re-sorting after later observe_day calls is fine).
  std::vector<std::uint32_t>& touched = joint_touched_[n];
  std::sort(touched.begin(), touched.end());
  // Marginalize the joint over the X-pair to get Y-pair counts (integer
  // additions, so visiting only occupied cells changes nothing).
  std::vector<std::uint32_t> y_counts(pair_cells_, 0);
  for (const std::uint32_t cell : touched) {
    y_counts[cell % pair_cells_] += joint_row[cell];
  }
  const EntropyEstimate ey =
      entropy_bits(y_counts.data(), pair_cells_, total);
  const EntropyEstimate exy = entropy_bits_sparse(joint_row, touched, total);
  double hx = ex.bits;
  double h_x_given_y = exy.bits - ey.bits;
  if (bias_correction_) {
    // With few evaluation days the plug-in H(X|Y) is biased low (every
    // rarely-seen Y value looks perfectly informative), inflating MI. The
    // Miller-Madow correction cancels the leading bias term of each
    // entropy; without it the metric overstates leakage substantially.
    hx = miller_madow(ex, total);
    h_x_given_y = miller_madow(exy, total) - miller_madow(ey, total);
  }
  const double mi = (hx - h_x_given_y) / hx;
  // The correction (and floating-point cancellation) can push the ratio
  // slightly outside [0, 1]; clamp to the metric's defined range.
  return std::clamp(mi, 0.0, 1.0);
}

double PairwiseMiEstimator::normalized_mi() const {
  if (days_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t n = 0; n + 1 < intervals_; ++n) {
    sum += normalized_mi_at(n);
  }
  return sum / static_cast<double>(intervals_ - 1);
}

double PairwiseMiEstimator::usage_entropy_at(std::size_t n) const {
  RLBLH_REQUIRE(n + 1 < intervals_,
                "PairwiseMiEstimator: interval out of range");
  return entropy_bits(x_counts_.data() + n * pair_cells_, pair_cells_,
                      static_cast<double>(days_))
      .bits;
}

}  // namespace rlblh
