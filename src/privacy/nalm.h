// Nonintrusive appliance load monitoring (NALM) attack (Hart 1992 style).
//
// The adversary model the paper defends against: a man-in-the-middle reads
// the meter stream and detects appliance load signatures from step edges in
// successive readings. This module implements that edge-detection attack so
// examples and tests can measure, on ground-truth appliance events, how many
// signatures survive each BLH scheme.
#pragma once

#include <cstddef>
#include <vector>

#include "meter/appliances.h"
#include "meter/trace.h"

namespace rlblh {

/// One activation recovered by the attacker from the meter stream: a rising
/// edge of height `power` at `start`, matched with a falling edge of similar
/// height `duration` intervals later.
struct DetectedEvent {
  std::size_t start = 0;
  std::size_t duration = 0;
  double power = 0.0;  ///< estimated per-interval draw (kWh/min)
};

/// Parameters of the edge-matching detector.
struct NalmConfig {
  double edge_threshold = 0.004;   ///< minimum |step| treated as an edge (kWh)
  double power_tolerance = 0.35;   ///< relative mismatch allowed when pairing
                                   ///< a falling edge with a rising one
  std::size_t max_duration = 480;  ///< longest activation considered
};

/// Detects appliance activations in a meter stream by pairing rising and
/// falling edges of similar magnitude (nearest-match within max_duration).
std::vector<DetectedEvent> nalm_detect(const DayTrace& readings,
                                       const NalmConfig& config = {});

/// Result of scoring detections against ground truth.
struct NalmScore {
  std::size_t true_events = 0;      ///< ground-truth events above threshold
  std::size_t detected_events = 0;  ///< detections emitted by the attacker
  std::size_t matched = 0;          ///< true events matched by a detection
  /// Recall on detectable ground truth: matched / true_events (0 when none).
  double detection_rate() const {
    return true_events == 0
               ? 0.0
               : static_cast<double>(matched) / static_cast<double>(true_events);
  }
};

/// Scores detections against ground-truth appliance events. A true event
/// counts as matched when some detection overlaps it in time and agrees on
/// power within `config.power_tolerance`. Ground-truth events whose power is
/// below the edge threshold are excluded (no detector could see them).
NalmScore nalm_score(const std::vector<DetectedEvent>& detected,
                     const std::vector<ApplianceEvent>& truth,
                     const NalmConfig& config = {});

}  // namespace rlblh
