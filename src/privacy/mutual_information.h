// Normalized mutual information over length-two windows (paper Eq. 20).
//
// Load signatures are detected from high-frequency variation, "especially by
// watching two successive values". The paper therefore measures how much
// observing Y_n = (y_n, y_{n+1}) reveals about X_n = (x_n, x_{n+1}):
//
//     MI = (1/(n_M - 1)) * sum_n [ H(X_n) - H(X_n | Y_n) ] / H(X_n)
//
// Continuous values are quantized to a fixed number of levels for the
// entropy estimates (prior BLH work does the same; the controller itself
// never quantizes). Intervals where H(X_n) = 0 — the usage pair is
// deterministic, so there is nothing to leak — contribute 0 and are
// documented as such.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "meter/trace.h"
#include "util/quantizer.h"

namespace rlblh {

/// Streaming estimator of the paper's normalized MI metric. Observes paired
/// (usage, reading) days, accumulating per-interval joint histograms of the
/// quantized pairs; normalized_mi() then evaluates Eq. 20.
class PairwiseMiEstimator {
 public:
  /// `intervals` slots per day (>= 2); `levels` quantization levels (>= 2)
  /// applied to both streams; values live in [0, x_cap] / [0, y_cap].
  PairwiseMiEstimator(std::size_t intervals, std::size_t levels, double x_cap,
                      double y_cap);

  /// Folds in one evaluation day of usage x and meter readings y.
  void observe_day(const DayTrace& usage, const DayTrace& readings);

  /// Number of days observed.
  std::size_t days() const { return days_; }

  /// Normalized MI averaged over intervals (Eq. 20), in [0, 1].
  double normalized_mi() const;

  /// Normalized MI of one interval index n in [0, intervals-2]; 0 when
  /// H(X_n) = 0.
  double normalized_mi_at(std::size_t n) const;

  /// Entropy H(X_n) in bits at interval n (diagnostic, plug-in estimate).
  double usage_entropy_at(std::size_t n) const;

  /// Enables/disables the Miller-Madow bias correction (on by default).
  /// With finitely many evaluation days the plug-in conditional entropy is
  /// biased low, which overstates leakage; the correction removes the
  /// leading (K-1)/(2N ln 2) term of each entropy estimate.
  void set_bias_correction(bool enabled) { bias_correction_ = enabled; }

 private:
  /// Flat index of a quantized pair (i, j), each in [0, levels).
  std::size_t pair_index(std::size_t i, std::size_t j) const {
    return i * levels_ + j;
  }

  std::size_t intervals_;
  std::size_t levels_;
  Quantizer qx_;
  Quantizer qy_;
  std::size_t days_ = 0;
  bool bias_correction_ = true;
  // Per interval n: counts over X-pair (levels^2 cells) and over the joint
  // (X-pair, Y-pair) ((levels^2)^2 cells).
  std::vector<std::vector<std::uint32_t>> x_counts_;
  std::vector<std::vector<std::uint32_t>> joint_counts_;
};

}  // namespace rlblh
