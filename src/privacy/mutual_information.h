// Normalized mutual information over length-two windows (paper Eq. 20).
//
// Load signatures are detected from high-frequency variation, "especially by
// watching two successive values". The paper therefore measures how much
// observing Y_n = (y_n, y_{n+1}) reveals about X_n = (x_n, x_{n+1}):
//
//     MI = (1/(n_M - 1)) * sum_n [ H(X_n) - H(X_n | Y_n) ] / H(X_n)
//
// Continuous values are quantized to a fixed number of levels for the
// entropy estimates (prior BLH work does the same; the controller itself
// never quantizes). Intervals where H(X_n) = 0 — the usage pair is
// deterministic, so there is nothing to leak — contribute 0 and are
// documented as such.
//
// Storage is sized for reuse: both count tables are single flat allocations
// (interval-major), and every joint cell that becomes nonzero is remembered
// in a per-interval first-touch list. reset() therefore zeroes only the
// cells an evaluation actually touched (days x intervals writes, not the
// levels^4 x intervals table), and the entropy evaluation walks exactly the
// occupied joint cells in ascending index order — the same nonzero-cell
// sequence a dense scan visits, so every floating-point sum is bitwise
// identical to the dense implementation this replaces. Fleet workers lean
// on both properties to amortize one estimator across thousands of
// households.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "meter/trace.h"
#include "util/quantizer.h"

namespace rlblh {

/// Streaming estimator of the paper's normalized MI metric. Observes paired
/// (usage, reading) days, accumulating per-interval joint histograms of the
/// quantized pairs; normalized_mi() then evaluates Eq. 20.
class PairwiseMiEstimator {
 public:
  /// `intervals` slots per day (>= 2); `levels` quantization levels (>= 2)
  /// applied to both streams; values live in [0, x_cap] / [0, y_cap].
  PairwiseMiEstimator(std::size_t intervals, std::size_t levels, double x_cap,
                      double y_cap);

  /// Folds in one evaluation day of usage x and meter readings y (read-only
  /// lane views; a DayTrace converts implicitly, a strided batch lane is
  /// consumed without a copy).
  void observe_day(ConstTraceLane usage, ConstTraceLane readings);

  /// Number of days observed.
  std::size_t days() const { return days_; }

  /// Normalized MI averaged over intervals (Eq. 20), in [0, 1].
  double normalized_mi() const;

  /// Normalized MI of one interval index n in [0, intervals-2]; 0 when
  /// H(X_n) = 0.
  double normalized_mi_at(std::size_t n) const;

  /// Entropy H(X_n) in bits at interval n (diagnostic, plug-in estimate).
  double usage_entropy_at(std::size_t n) const;

  /// Enables/disables the Miller-Madow bias correction (on by default).
  /// With finitely many evaluation days the plug-in conditional entropy is
  /// biased low, which overstates leakage; the correction removes the
  /// leading (K-1)/(2N ln 2) term of each entropy estimate.
  void set_bias_correction(bool enabled) { bias_correction_ = enabled; }

  /// Returns the estimator to its freshly-constructed state (same geometry
  /// and caps) without releasing its buffers: touched joint cells are
  /// zeroed via the first-touch lists, so the cost scales with the days
  /// observed, not with the levels^4 table size.
  void reset();

 private:
  /// Flat index of a quantized pair (i, j), each in [0, levels).
  std::size_t pair_index(std::size_t i, std::size_t j) const {
    return i * levels_ + j;
  }

  std::size_t intervals_;
  std::size_t levels_;
  std::size_t pair_cells_;   ///< levels^2, one X-pair (or Y-pair) alphabet
  std::size_t joint_cells_;  ///< levels^4, the (X-pair, Y-pair) alphabet
  Quantizer qx_;
  Quantizer qy_;
  std::size_t days_ = 0;
  bool bias_correction_ = true;
  // Interval-major flat tables: interval n's X-pair counts live at
  // [n * pair_cells_, (n+1) * pair_cells_), its joint counts at
  // [n * joint_cells_, (n+1) * joint_cells_).
  std::vector<std::uint32_t> x_counts_;
  std::vector<std::uint32_t> joint_counts_;
  // Per interval: joint cells that went 0 -> nonzero, in touch order
  // (exactly the occupied set; sorted on demand by the entropy walk).
  mutable std::vector<std::vector<std::uint32_t>> joint_touched_;
};

}  // namespace rlblh
