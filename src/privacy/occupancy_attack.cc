#include "privacy/occupancy_attack.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rlblh {

void OccupancyAttackConfig::validate() const {
  RLBLH_REQUIRE(window >= 1, "OccupancyAttackConfig: window must be >= 1");
  RLBLH_REQUIRE(quiet_quantile >= 0.0 && quiet_quantile < busy_quantile &&
                    busy_quantile <= 1.0,
                "OccupancyAttackConfig: need 0 <= quiet < busy <= 1");
}

std::vector<bool> infer_activity(const DayTrace& readings,
                                 const OccupancyAttackConfig& config) {
  config.validate();
  const std::size_t n_m = readings.intervals();

  // Centered rolling mean (the adversary's low-pass filter).
  std::vector<double> smoothed(n_m, 0.0);
  const std::size_t half = config.window / 2;
  double acc = 0.0;
  std::size_t left = 0, right = 0;  // window is [left, right)
  for (std::size_t n = 0; n < n_m; ++n) {
    const std::size_t want_left = n > half ? n - half : 0;
    const std::size_t want_right = std::min(n + half + 1, n_m);
    while (right < want_right) acc += readings.at(right++);
    while (left < want_left) acc -= readings.at(left++);
    smoothed[n] = acc / static_cast<double>(right - left);
  }

  // Threshold midway between the stream's own quiet and busy levels.
  std::vector<double> sorted = smoothed;
  std::sort(sorted.begin(), sorted.end());
  const auto at_quantile = [&](double q) {
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[i];
  };
  const double threshold =
      0.5 * (at_quantile(config.quiet_quantile) +
             at_quantile(config.busy_quantile));

  std::vector<bool> active(n_m, false);
  for (std::size_t n = 0; n < n_m; ++n) {
    active[n] = smoothed[n] > threshold;
  }
  return active;
}

double OccupancyScore::balanced_accuracy() const {
  double classes = 0.0;
  double sum = 0.0;
  if (active_intervals > 0) {
    sum += static_cast<double>(active_hits) /
           static_cast<double>(active_intervals);
    classes += 1.0;
  }
  if (inactive_intervals > 0) {
    sum += static_cast<double>(inactive_hits) /
           static_cast<double>(inactive_intervals);
    classes += 1.0;
  }
  return classes == 0.0 ? 0.0 : sum / classes;
}

void OccupancyScore::merge(const OccupancyScore& other) {
  active_intervals += other.active_intervals;
  inactive_intervals += other.inactive_intervals;
  active_hits += other.active_hits;
  inactive_hits += other.inactive_hits;
}

OccupancyScore score_activity(const std::vector<bool>& predicted,
                              const Occupancy& truth) {
  RLBLH_REQUIRE(!predicted.empty(), "score_activity: empty prediction");
  OccupancyScore score;
  for (std::size_t n = 0; n < predicted.size(); ++n) {
    if (truth.active(n)) {
      ++score.active_intervals;
      if (predicted[n]) ++score.active_hits;
    } else {
      ++score.inactive_intervals;
      if (!predicted[n]) ++score.inactive_hits;
    }
  }
  return score;
}

}  // namespace rlblh
