// Occupancy-inference attack on the low-frequency envelope.
//
// The paper's motivating adversary learns "when you wake up, and when you
// go out and come back" from the meter readings (Section I); the
// low-frequency components "provide a clue for user's sleep patterns or
// times of vacancy" (Section III). This module implements that adversary:
// it smooths the meter stream with a rolling mean, thresholds it between
// the stream's own quiet and busy levels, and predicts "someone is home
// and active" per interval. Scored against the household model's
// ground-truth occupancy it quantifies low-frequency leakage directly —
// the operational counterpart of the CC metric.
#pragma once

#include <cstddef>
#include <vector>

#include "meter/appliances.h"
#include "meter/trace.h"

namespace rlblh {

/// Parameters of the rolling-mean occupancy detector.
struct OccupancyAttackConfig {
  std::size_t window = 45;       ///< rolling-mean width in intervals
  double quiet_quantile = 0.2;   ///< quantile taken as the "empty" level
  double busy_quantile = 0.8;    ///< quantile taken as the "active" level

  /// Throws ConfigError when parameters are out of range.
  void validate() const;
};

/// Per-interval activity prediction for one day (true = occupants active).
std::vector<bool> infer_activity(const DayTrace& readings,
                                 const OccupancyAttackConfig& config = {});

/// Outcome of scoring predictions against ground truth.
struct OccupancyScore {
  std::size_t active_intervals = 0;    ///< ground-truth active
  std::size_t inactive_intervals = 0;  ///< ground-truth inactive
  std::size_t active_hits = 0;         ///< correctly predicted active
  std::size_t inactive_hits = 0;       ///< correctly predicted inactive

  /// Balanced accuracy in [0, 1]: mean of the per-class hit rates; 0.5 is
  /// chance level, 1.0 is perfect occupancy recovery.
  double balanced_accuracy() const;

  /// Folds another day's score into this one.
  void merge(const OccupancyScore& other);
};

/// Scores one day's predictions against the realized occupancy.
OccupancyScore score_activity(const std::vector<bool>& predicted,
                              const Occupancy& truth);

}  // namespace rlblh
