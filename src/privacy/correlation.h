// Pearson correlation between usage and meter readings (paper Eq. 21).
//
// The paper's CC metric quantifies low-frequency leakage: a high correlation
// between x_n and y_n over a day means the meter readings track the
// behavioural envelope. (Eq. 21 as printed contains a typesetting slip —
// the numerator shows a product of sums; the text defines CC as "the Pearson
// correlation coefficient between x_n and y_n", which is what we compute.)
#pragma once

#include <cstddef>
#include <vector>

#include "meter/trace.h"
#include "util/running_stats.h"

namespace rlblh {

/// Pearson correlation coefficient of two equal-length series (read-only
/// lane views; a DayTrace converts implicitly and a strided batch lane is
/// consumed without a copy). Returns 0 when either series is constant
/// (zero variance), matching the convention that a flat series carries no
/// linear relationship.
double pearson_correlation(ConstTraceLane x, ConstTraceLane y);

/// Convenience overload on plain vectors (throws on empty input).
double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Accumulates the per-day CC over an evaluation run and reports its mean,
/// the statistic plotted in the paper's Figures 5a, 8b and 9b.
class CorrelationAccumulator {
 public:
  /// Folds in one evaluation day.
  void observe_day(ConstTraceLane usage, ConstTraceLane readings);

  /// Mean per-day CC; 0 when no days observed.
  double mean_cc() const;

  /// Standard deviation of the per-day CC.
  double stddev_cc() const { return stats_.stddev(); }

  /// Number of days folded in.
  std::size_t days() const { return stats_.count(); }

  /// Forgets all observed days (fresh-accumulator state, no reallocation).
  void reset() { stats_.reset(); }

 private:
  RunningStats stats_;
};

}  // namespace rlblh
