#include "privacy/correlation.h"

#include <cmath>

#include "util/error.h"

namespace rlblh {

double pearson_correlation(ConstTraceLane x, ConstTraceLane y) {
  RLBLH_REQUIRE(x.size() == y.size(),
                "pearson_correlation: series must be nonempty and equal length");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  RLBLH_REQUIRE(x.size() == y.size() && !x.empty(),
                "pearson_correlation: series must be nonempty and equal length");
  return pearson_correlation(ConstTraceLane(x.data(), 1, x.size()),
                             ConstTraceLane(y.data(), 1, y.size()));
}

void CorrelationAccumulator::observe_day(ConstTraceLane usage,
                                         ConstTraceLane readings) {
  stats_.add(pearson_correlation(usage, readings));
}

double CorrelationAccumulator::mean_cc() const {
  if (stats_.count() == 0) return 0.0;
  return stats_.mean();
}

}  // namespace rlblh
