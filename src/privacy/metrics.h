// Cost-savings metrics (paper Eq. 3, 7, 22).
#pragma once

#include <cstddef>

#include "meter/trace.h"
#include "pricing/tou.h"
#include "util/running_stats.h"

namespace rlblh {

// All series parameters are read-only lane views: a DayTrace converts
// implicitly, and a strided lane of a batch day's interval-major buffer is
// consumed without a copy. The loops run interval-ascending regardless of
// stride, so the accumulated sums are bitwise independent of the layout.

/// Daily cost savings S = sum_n r_n (x_n - y_n) in cents (paper Eq. 3).
double daily_savings_cents(ConstTraceLane usage, ConstTraceLane readings,
                           const TouSchedule& prices);

/// Daily bill sum_n r_n y_n in cents.
double daily_bill_cents(ConstTraceLane readings, const TouSchedule& prices);

/// Daily cost of actual consumption sum_n r_n x_n in cents.
double daily_usage_cost_cents(ConstTraceLane usage, const TouSchedule& prices);

/// Accumulates the saving ratio SR = E[ S / (sum_n r_n x_n) ] over days
/// (paper Eq. 22, the statistic of Figures 5c, 7c, 8a and 9a).
class SavingRatioAccumulator {
 public:
  /// Folds in one evaluation day. Days with zero usage cost are skipped
  /// (the ratio is undefined for them).
  void observe_day(ConstTraceLane usage, ConstTraceLane readings,
                   const TouSchedule& prices);

  /// Mean per-day saving ratio (dimensionless; multiply by 100 for %).
  double saving_ratio() const;

  /// Mean absolute daily savings in cents.
  double mean_daily_savings_cents() const;

  /// Number of days folded in.
  std::size_t days() const { return ratio_stats_.count(); }

  /// Forgets all observed days (fresh-accumulator state, no reallocation).
  void reset() {
    ratio_stats_.reset();
    savings_stats_.reset();
  }

 private:
  RunningStats ratio_stats_;
  RunningStats savings_stats_;
};

}  // namespace rlblh
