#include "privacy/metrics.h"

#include "util/error.h"

namespace rlblh {

double daily_savings_cents(ConstTraceLane usage, ConstTraceLane readings,
                           const TouSchedule& prices) {
  RLBLH_REQUIRE(usage.intervals() == readings.intervals() &&
                    usage.intervals() == prices.intervals(),
                "daily_savings_cents: series lengths must match");
  double s = 0.0;
  for (std::size_t n = 0; n < usage.intervals(); ++n) {
    s += prices.rate(n) * (usage[n] - readings[n]);
  }
  return s;
}

double daily_bill_cents(ConstTraceLane readings, const TouSchedule& prices) {
  // Same in-order rate * value accumulation as TouSchedule::cost, expressed
  // over a (possibly strided) view — term-for-term the same sum.
  RLBLH_REQUIRE(readings.intervals() == prices.intervals(),
                "daily_bill_cents: series length must match the schedule");
  double total = 0.0;
  for (std::size_t n = 0; n < readings.intervals(); ++n) {
    total += prices.rate(n) * readings[n];
  }
  return total;
}

double daily_usage_cost_cents(ConstTraceLane usage, const TouSchedule& prices) {
  RLBLH_REQUIRE(usage.intervals() == prices.intervals(),
                "daily_usage_cost_cents: series length must match the "
                "schedule");
  double total = 0.0;
  for (std::size_t n = 0; n < usage.intervals(); ++n) {
    total += prices.rate(n) * usage[n];
  }
  return total;
}

void SavingRatioAccumulator::observe_day(ConstTraceLane usage,
                                         ConstTraceLane readings,
                                         const TouSchedule& prices) {
  const double cost = daily_usage_cost_cents(usage, prices);
  if (cost <= 0.0) return;
  const double savings = daily_savings_cents(usage, readings, prices);
  ratio_stats_.add(savings / cost);
  savings_stats_.add(savings);
}

double SavingRatioAccumulator::saving_ratio() const {
  if (ratio_stats_.count() == 0) return 0.0;
  return ratio_stats_.mean();
}

double SavingRatioAccumulator::mean_daily_savings_cents() const {
  if (savings_stats_.count() == 0) return 0.0;
  return savings_stats_.mean();
}

}  // namespace rlblh
