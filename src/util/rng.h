// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in the library draws through an rlblh::Rng that
// the caller seeds explicitly, so that an experiment is a pure function of
// (configuration, seed). There is no global RNG state.
#pragma once

#include <cstdint>
#include <random>
#include <span>

#include "util/error.h"

namespace rlblh {

/// SplitMix64 output function (Steele, Lea & Flood): a bijective 64-bit
/// finalizer whose outputs pass BigCrush even on sequential inputs. Used to
/// whiten structured seed material before it reaches an engine.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derives the seed of an independent per-entity RNG stream from a base
/// seed and an entity index (e.g. a fleet household). Two splitmix rounds
/// decorrelate both axes: adjacent base seeds and adjacent indices land in
/// unrelated regions of the 64-bit space, so a 10k-household fleet seeded
/// {base, 0..9999} shares no streams with the fleet at base+1. Pure
/// function — the same (base, index) always names the same stream.
constexpr std::uint64_t derive_stream_seed(std::uint64_t base,
                                           std::uint64_t index) {
  return splitmix64(splitmix64(base) ^ (index + 0xD1B54A32D192ED03ULL));
}

/// A seedable pseudo-random source wrapping std::mt19937_64 with the handful
/// of draw shapes the simulators need. Copyable; copies evolve independently.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    RLBLH_REQUIRE(lo <= hi, "Rng::uniform: lo must be <= hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Fills `out` with uniform reals in [lo, hi). Requires lo <= hi. Each
  /// element is produced by a distribution constructed per draw, exactly as
  /// a sequence of uniform(lo, hi) calls would, so batched and one-at-a-time
  /// consumption of the stream yield bitwise-identical values.
  void fill_uniform(double lo, double hi, std::span<double> out) {
    RLBLH_REQUIRE(lo <= hi, "Rng::fill_uniform: lo must be <= hi");
    for (double& v : out) {
      v = std::uniform_real_distribution<double>(lo, hi)(engine_);
    }
  }

  /// Strided fill: writes `count` uniform reals in [lo, hi) to out[0],
  /// out[stride], ..., the lane-shaped counterpart of fill_uniform (a batch
  /// generator writing one household's draws straight into an interval-major
  /// SoA buffer). Draw-for-draw identical to `count` uniform(lo, hi) calls.
  void fill_uniform_strided(double lo, double hi, double* out,
                            std::size_t stride, std::size_t count) {
    RLBLH_REQUIRE(lo <= hi, "Rng::fill_uniform_strided: lo must be <= hi");
    RLBLH_REQUIRE(out != nullptr && stride >= 1,
                  "Rng::fill_uniform_strided: need a target with stride >= 1");
    for (std::size_t i = 0; i < count; ++i) {
      out[i * stride] = std::uniform_real_distribution<double>(lo, hi)(engine_);
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    RLBLH_REQUIRE(lo <= hi, "Rng::uniform_int: lo must be <= hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) {
    RLBLH_REQUIRE(sigma >= 0.0, "Rng::normal: sigma must be >= 0");
    if (sigma == 0.0) return mean;
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Exponential draw with the given rate (> 0); mean is 1/rate.
  double exponential(double rate) {
    RLBLH_REQUIRE(rate > 0.0, "Rng::exponential: rate must be > 0");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli draw: true with probability p in [0, 1].
  bool bernoulli(double p) {
    RLBLH_REQUIRE(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child generator; useful for giving each
  /// subcomponent its own stream so draws in one do not perturb another.
  Rng fork() { return Rng(engine_()); }

  /// Access to the underlying engine for std::distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

  /// Read access for state serialization (std::mt19937_64's stream operators
  /// round-trip the full 312-word state exactly).
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Lane-batched uniform draws: out[k] is ONE uniform [0, 1) draw from
/// *rngs[k], in lane order. Each engine sees exactly the single draw it
/// would make in a scalar run — only the interleaving across lanes changes,
/// which is invisible because the engines are independent. This is the
/// primitive behind lane-native epsilon-greedy: all W exploration coins are
/// flipped in one pass instead of W virtual round-trips.
inline void fill_uniform_lanes(std::span<Rng* const> rngs,
                               std::span<double> out) {
  RLBLH_REQUIRE(rngs.size() == out.size(),
                "fill_uniform_lanes: lane counts must match");
  for (std::size_t k = 0; k < rngs.size(); ++k) {
    out[k] = rngs[k]->uniform();
  }
}

}  // namespace rlblh
