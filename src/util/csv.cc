#include "util/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace rlblh {

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

double parse_number(const std::string& field, std::size_t line_no) {
  const std::string t = trim(field);
  if (t.empty()) {
    throw DataError("csv: empty numeric field on line " +
                    std::to_string(line_no));
  }
  try {
    std::size_t consumed = 0;
    const double v = std::stod(t, &consumed);
    if (consumed != t.size()) {
      throw DataError("csv: trailing garbage in field '" + t + "' on line " +
                      std::to_string(line_no));
    }
    return v;
  } catch (const std::invalid_argument&) {
    throw DataError("csv: non-numeric field '" + t + "' on line " +
                    std::to_string(line_no));
  } catch (const std::out_of_range&) {
    throw DataError("csv: out-of-range number '" + t + "' on line " +
                    std::to_string(line_no));
  }
}

}  // namespace

std::size_t CsvTable::column_count() const {
  if (!header.empty()) return header.size();
  if (!rows.empty()) return rows.front().size();
  return 0;
}

std::vector<double> CsvTable::column(std::size_t i) const {
  if (i >= column_count()) {
    throw DataError("csv: column index " + std::to_string(i) +
                    " out of range");
  }
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[i]);
  return out;
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const auto it = std::find(header.begin(), header.end(), name);
  if (it == header.end()) {
    throw DataError("csv: no column named '" + name + "'");
  }
  return column(static_cast<std::size_t>(it - header.begin()));
}

CsvTable read_csv(std::istream& in, bool has_header) {
  CsvTable table;
  std::string line;
  std::size_t line_no = 0;
  bool header_pending = has_header;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = split_fields(trimmed);
    if (header_pending) {
      for (const auto& f : fields) table.header.push_back(trim(f));
      width = fields.size();
      header_pending = false;
      continue;
    }
    if (width == 0) width = fields.size();
    if (fields.size() != width) {
      throw DataError("csv: ragged row on line " + std::to_string(line_no) +
                      " (expected " + std::to_string(width) + " fields, got " +
                      std::to_string(fields.size()) + ")");
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) row.push_back(parse_number(f, line_no));
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) throw DataError("csv: cannot open file '" + path + "'");
  return read_csv(in, has_header);
}

void write_csv(std::ostream& out, const CsvTable& table) {
  if (!table.header.empty()) {
    for (std::size_t i = 0; i < table.header.size(); ++i) {
      if (i > 0) out << ',';
      out << table.header[i];
    }
    out << '\n';
  }
  out.precision(10);
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw DataError("csv: cannot open file '" + path + "' for write");
  write_csv(out, table);
}

}  // namespace rlblh
