// Streaming empirical distribution with sampling support.
//
// The synthetic-data heuristic (paper Section V-A) tracks, for every
// measurement interval n, "the sample distribution of x_n" and later draws
// synthetic usage values from it. EmpiricalDistribution implements that
// tracker: it keeps a bounded reservoir of observed values plus a histogram,
// and can sample either an exact observed value (reservoir) or a smoothed
// value (histogram cell with intra-cell jitter).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "util/histogram.h"
#include "util/rng.h"

namespace rlblh {

/// One-dimensional empirical distribution over [lo, hi].
class EmpiricalDistribution {
 public:
  /// Creates an empty distribution covering [lo, hi] with the given histogram
  /// resolution and reservoir capacity. Requires bins >= 1, lo < hi and
  /// reservoir_capacity >= 1.
  EmpiricalDistribution(double lo, double hi, std::size_t bins = 32,
                        std::size_t reservoir_capacity = 64);

  /// Folds in one observation. Values are clamped to [lo, hi].
  void add(double x, Rng& rng);

  /// Number of observations folded in so far.
  std::size_t count() const { return count_; }

  /// Sample mean of all observations; 0 when empty.
  double mean() const;

  /// Draws a value distributed like the observed data. With probability
  /// `reservoir_fraction` (default 0.5) an exact retained observation is
  /// returned; otherwise a histogram cell is drawn by mass and a uniform
  /// point inside it is returned. Requires count() >= 1.
  double sample(Rng& rng) const;

  /// Read access to the underlying histogram (used by tests and diagnostics).
  const Histogram& histogram() const { return hist_; }

  /// Fraction of samples served from the exact-value reservoir; in [0, 1].
  void set_reservoir_fraction(double f);

  /// Writes the full sampling state (histogram mass, reservoir contents,
  /// count/sum/fraction) at full precision: a load() into a distribution of
  /// identical geometry reproduces sample() draws bitwise.
  void save(std::ostream& out) const;

  /// Restores state written by save(). Throws DataError on malformed input
  /// or geometry mismatch.
  void load(std::istream& in);

 private:
  Histogram hist_;
  std::vector<double> reservoir_;
  std::size_t reservoir_capacity_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double reservoir_fraction_ = 0.5;
};

}  // namespace rlblh
