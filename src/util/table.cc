#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace rlblh {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  RLBLH_REQUIRE(!columns_.empty(), "TablePrinter: need at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RLBLH_REQUIRE(cells.size() == columns_.size(),
                "TablePrinter: row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << (i == 0 ? "| " : " | ")
          << std::setw(static_cast<int>(widths[i])) << cells[i];
    }
    out << " |\n";
  };
  print_row(columns_);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    out << (i == 0 ? "|" : "|") << std::string(widths[i] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace rlblh
