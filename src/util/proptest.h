// Minimal in-repo property-based testing harness (generic runner).
//
// A property is a callable that must hold for every value a domain can
// produce. The runner samples the domain under a per-iteration seed derived
// from a base seed, executes the property, and on the first failure greedily
// shrinks the failing value toward a minimal reproduction before reporting.
// Every failure report carries the iteration's seed as
// `RLBLH_PROPTEST_SEED=<n>`; exporting that variable makes the next run
// replay exactly the failing iteration (and nothing else), so a CI failure
// is reproducible on any machine with one environment variable.
//
//   auto result = proptest::for_all("battery stays legal",
//                                   proptest::rlblh_config_domain(),
//                                   [](const RlBlhConfig& c, Rng& rng) {
//                                     ... throw to fail ...
//                                   });
//   ASSERT_TRUE(result.success) << result.message;
//
// Iteration count can be overridden globally with RLBLH_PROPTEST_ITERS.
// Domains over the library's configuration types live one layer up, in
// sim/proptest_domains.h (they need the meter/pricing/core libraries).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rlblh::proptest {

/// Thrown by properties (e.g. via PROPTEST_CHECK) to signal a violation.
class PropertyFailure : public std::runtime_error {
 public:
  explicit PropertyFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// Knobs of one for_all run.
struct PropertyOptions {
  std::size_t iterations = 100;      ///< random cases when no seed is pinned
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ull;  ///< stream identity
  std::size_t max_shrink_steps = 256;  ///< cap on the greedy shrink walk
};

/// Outcome of a for_all run.
struct PropertyResult {
  bool success = true;
  std::size_t iterations_run = 0;
  std::uint64_t failing_seed = 0;   ///< valid when !success
  std::size_t shrink_steps = 0;     ///< accepted shrinks before reporting
  std::string message;              ///< failure + reproduction instructions
};

/// A value space: how to sample it, how to propose smaller failing
/// candidates, and how to print a value in a failure report.
template <typename T>
struct Domain {
  std::function<T(Rng&)> generate;
  std::function<std::vector<T>(const T&)> shrink =
      [](const T&) { return std::vector<T>{}; };
  std::function<std::string(const T&)> describe =
      [](const T&) { return std::string("<value>"); };
};

namespace detail {

/// SplitMix64 step: decorrelates per-iteration seeds drawn from base ^ i.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t iteration);

/// Reads RLBLH_PROPTEST_SEED; true (and sets `seed`) when pinned.
bool pinned_seed(std::uint64_t* seed);

/// Reads RLBLH_PROPTEST_ITERS; returns `fallback` when unset/invalid.
std::size_t iteration_override(std::size_t fallback);

/// Formats the failure report and echoes it to stderr so the reproduction
/// seed is visible even when a test runner swallows the assertion message.
std::string failure_message(const char* name, std::size_t iteration,
                            std::uint64_t seed, const std::string& what,
                            std::size_t shrink_steps,
                            const std::string& described);

}  // namespace detail

/// Runs `property(value, rng)` against `options.iterations` samples of the
/// domain. The property signals violation by throwing (PropertyFailure,
/// LogicError — any std::exception). On failure the value is greedily shrunk
/// while it keeps failing under the same seed, and the result carries a
/// message with the reproduction seed. Never throws itself.
template <typename T, typename Property>
PropertyResult for_all(const char* name, const Domain<T>& domain,
                       Property&& property,
                       const PropertyOptions& options = {}) {
  PropertyResult result;

  // One attempt = regenerate + rerun under a fixed seed, optionally with a
  // substituted value (used while shrinking so the property's own auxiliary
  // draws stay identical to the original failure).
  const auto attempt = [&](std::uint64_t seed, const T* override_value,
                           std::string* what) -> bool {
    Rng rng(seed);
    try {
      T value = domain.generate(rng);
      const T& subject = override_value != nullptr ? *override_value : value;
      property(subject, rng);
      return true;
    } catch (const std::exception& error) {
      if (what != nullptr) *what = error.what();
      return false;
    }
  };

  std::uint64_t pinned = 0;
  const bool replay = detail::pinned_seed(&pinned);
  const std::size_t iterations =
      replay ? 1 : detail::iteration_override(options.iterations);

  for (std::size_t i = 0; i < iterations; ++i) {
    const std::uint64_t seed =
        replay ? pinned : detail::derive_seed(options.base_seed, i);
    std::string what;
    ++result.iterations_run;
    if (attempt(seed, nullptr, &what)) continue;

    // Failure: regenerate the failing value, then walk the shrink lattice.
    result.success = false;
    result.failing_seed = seed;
    Rng regen(seed);
    T failing = domain.generate(regen);
    std::string failing_what = what;
    bool progressed = true;
    while (progressed && result.shrink_steps < options.max_shrink_steps) {
      progressed = false;
      for (const T& candidate : domain.shrink(failing)) {
        std::string candidate_what;
        if (!attempt(seed, &candidate, &candidate_what)) {
          failing = candidate;
          failing_what = candidate_what;
          ++result.shrink_steps;
          progressed = true;
          break;
        }
      }
    }
    result.message = detail::failure_message(
        name, i, seed, failing_what, result.shrink_steps,
        domain.describe(failing));
    return result;
  }
  return result;
}

}  // namespace rlblh::proptest

/// Fails the enclosing property with a formatted condition message.
#define PROPTEST_CHECK(expr, msg)                                   \
  ((expr) ? static_cast<void>(0)                                    \
          : throw ::rlblh::proptest::PropertyFailure(               \
                std::string("PROPTEST_CHECK failed: ") + #expr +    \
                " -- " + (msg)))
