// Streaming first/second-moment accumulation (Welford's algorithm).
#pragma once

#include <cstddef>
#include <limits>

namespace rlblh {

/// Accumulates count, mean, variance, min and max of a stream of doubles in
/// O(1) memory using Welford's numerically stable recurrence.
class RunningStats {
 public:
  RunningStats() = default;

  /// Folds one observation into the accumulator.
  void add(double x);

  /// Merges another accumulator into this one (parallel-combine rule).
  void merge(const RunningStats& other);

  /// Resets to the empty state.
  void reset();

  /// Number of observations folded in so far.
  std::size_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return min_; }

  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace rlblh
