// Error handling primitives shared by all rlblh subsystems.
//
// The library distinguishes two failure classes:
//  * ConfigError   -- the caller supplied an invalid configuration or argument.
//  * DataError     -- external input (trace files, CSV) is malformed.
// Internal invariant violations use RLBLH_ASSERT, which throws LogicError so
// tests can exercise failure paths without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace rlblh {

/// Thrown when a user-supplied configuration value is invalid
/// (e.g. a battery too small for the chosen decision interval).
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when external data (trace CSV, price file) cannot be parsed or
/// violates documented bounds.
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on violation of an internal invariant; indicates a library bug.
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw LogicError(std::string("invariant violated: ") + expr + " at " + file +
                   ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace rlblh

/// Checks an internal invariant; throws rlblh::LogicError when it fails.
#define RLBLH_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) \
          : ::rlblh::detail::assert_fail(#expr, __FILE__, __LINE__))

/// Checks a caller-supplied precondition; throws rlblh::ConfigError with the
/// given message when it fails.
#define RLBLH_REQUIRE(expr, msg) \
  ((expr) ? static_cast<void>(0) : throw ::rlblh::ConfigError(msg))
