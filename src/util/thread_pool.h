// Fixed-size thread pool for the sweep engine.
//
// The pool owns N worker threads that drain a FIFO task queue. There is no
// work stealing and no task priority: sweep cells are independent and
// coarse-grained (whole simulated experiments), so a single mutex-guarded
// queue is both simple and uncontended. Exceptions thrown by a task are
// captured in the std::future returned by submit() and rethrown at get().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/obs.h"

namespace rlblh {

/// A fixed-size pool of worker threads draining one FIFO queue.
class ThreadPool {
 public:
  /// Spawns `threads` (>= 1) workers.
  explicit ThreadPool(std::size_t threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a nullary callable; the returned future yields its result (or
  /// rethrows its exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(
        std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return future;
  }

  /// Thread count the library should default to: the RLBLH_THREADS
  /// environment variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static std::size_t default_thread_count();

 private:
  /// Queue entry: the callable plus its enqueue timestamp (only taken while
  /// observability is recording; a default time_point otherwise, which the
  /// worker treats as "wait time unknown").
  struct Task {
    std::function<void()> run;
    std::chrono::steady_clock::time_point enqueued;
  };

  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace rlblh
