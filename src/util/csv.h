// Minimal CSV reading/writing for traces and experiment outputs.
//
// The dialect is deliberately simple (no quoting, no embedded separators):
// numeric columns separated by commas, '#'-prefixed comment lines, optional
// single header line. That is sufficient for meter traces and result dumps
// while keeping parsing strict enough to reject malformed input loudly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rlblh {

/// A parsed CSV: column names (empty when the file had no header) and rows of
/// doubles, all rows the same width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  /// Number of data rows.
  std::size_t row_count() const { return rows.size(); }

  /// Number of columns (0 when empty).
  std::size_t column_count() const;

  /// Extracts one column by index. Throws DataError when out of range.
  std::vector<double> column(std::size_t i) const;

  /// Extracts one column by header name. Throws DataError when absent.
  std::vector<double> column(const std::string& name) const;
};

/// Parses CSV text from a stream. When `has_header` is true the first
/// non-comment line is taken as column names. Throws DataError on ragged
/// rows or non-numeric fields.
CsvTable read_csv(std::istream& in, bool has_header);

/// Reads and parses a CSV file. Throws DataError when the file cannot be
/// opened or parsed.
CsvTable read_csv_file(const std::string& path, bool has_header);

/// Writes a table (header optional: skipped when empty) to a stream.
void write_csv(std::ostream& out, const CsvTable& table);

/// Writes a table to a file. Throws DataError when the file cannot be opened.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace rlblh
