#include "util/empirical_dist.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

namespace rlblh {

EmpiricalDistribution::EmpiricalDistribution(double lo, double hi,
                                             std::size_t bins,
                                             std::size_t reservoir_capacity)
    : hist_(bins, lo, hi), reservoir_capacity_(reservoir_capacity) {
  RLBLH_REQUIRE(reservoir_capacity >= 1,
                "EmpiricalDistribution: reservoir capacity must be >= 1");
  reservoir_.reserve(reservoir_capacity);
}

void EmpiricalDistribution::add(double x, Rng& rng) {
  const double clamped = std::clamp(x, hist_.lo(), hist_.hi());
  hist_.add(clamped);
  ++count_;
  sum_ += clamped;
  // Vitter's algorithm R keeps a uniform sample of everything seen so far.
  if (reservoir_.size() < reservoir_capacity_) {
    reservoir_.push_back(clamped);
  } else {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(count_ - 1)));
    if (j < reservoir_capacity_) reservoir_[j] = clamped;
  }
}

double EmpiricalDistribution::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double EmpiricalDistribution::sample(Rng& rng) const {
  RLBLH_REQUIRE(count_ >= 1, "EmpiricalDistribution: cannot sample when empty");
  if (!reservoir_.empty() && rng.uniform() < reservoir_fraction_) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(reservoir_.size() - 1)));
    return reservoir_[i];
  }
  // Draw a histogram cell proportionally to its mass, then jitter within it.
  double target = rng.uniform() * hist_.total();
  std::size_t cell = hist_.bins() - 1;
  for (std::size_t i = 0; i < hist_.bins(); ++i) {
    target -= hist_.count(i);
    if (target <= 0.0) {
      cell = i;
      break;
    }
  }
  const double width = (hist_.hi() - hist_.lo()) / static_cast<double>(hist_.bins());
  const double left = hist_.lo() + static_cast<double>(cell) * width;
  return left + rng.uniform() * width;
}

void EmpiricalDistribution::save(std::ostream& out) const {
  const auto precision = out.precision(17);
  out << "edist " << count_ << ' ' << sum_ << ' ' << reservoir_fraction_
      << ' ' << reservoir_.size() << '\n';
  for (std::size_t i = 0; i < reservoir_.size(); ++i) {
    if (i > 0) out << ' ';
    out << reservoir_[i];
  }
  if (!reservoir_.empty()) out << '\n';
  out.precision(precision);
  hist_.save(out);
}

void EmpiricalDistribution::load(std::istream& in) {
  std::string word;
  std::size_t count = 0, reservoir_size = 0;
  double sum = 0.0, fraction = 0.0;
  if (!(in >> word >> count >> sum >> fraction >> reservoir_size) ||
      word != "edist") {
    throw DataError("EmpiricalDistribution::load: malformed header");
  }
  if (reservoir_size > reservoir_capacity_ || reservoir_size > count ||
      fraction < 0.0 || fraction > 1.0) {
    throw DataError("EmpiricalDistribution::load: inconsistent state");
  }
  std::vector<double> reservoir(reservoir_size, 0.0);
  for (std::size_t i = 0; i < reservoir_size; ++i) {
    if (!(in >> reservoir[i])) {
      throw DataError("EmpiricalDistribution::load: malformed reservoir");
    }
  }
  hist_.load(in);
  reservoir_ = std::move(reservoir);
  reservoir_.reserve(reservoir_capacity_);
  count_ = count;
  sum_ = sum;
  reservoir_fraction_ = fraction;
}

void EmpiricalDistribution::set_reservoir_fraction(double f) {
  RLBLH_REQUIRE(f >= 0.0 && f <= 1.0,
                "EmpiricalDistribution: reservoir fraction must be in [0,1]");
  reservoir_fraction_ = f;
}

}  // namespace rlblh
