#include "util/proptest.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace rlblh::proptest::detail {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t iteration) {
  // SplitMix64 (Steele/Lea/Flood): one full mixing round over base ^ i
  // gives statistically independent seeds for neighbouring iterations.
  std::uint64_t z = base + iteration * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool pinned_seed(std::uint64_t* seed) {
  const char* env = std::getenv("RLBLH_PROPTEST_SEED");
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0') return false;
  *seed = static_cast<std::uint64_t>(parsed);
  return true;
}

std::size_t iteration_override(std::size_t fallback) {
  const char* env = std::getenv("RLBLH_PROPTEST_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

std::string failure_message(const char* name, std::size_t iteration,
                            std::uint64_t seed, const std::string& what,
                            std::size_t shrink_steps,
                            const std::string& described) {
  std::ostringstream out;
  out << "property '" << name << "' failed at iteration " << iteration
      << ":\n  " << what << "\n";
  if (shrink_steps > 0) {
    out << "minimal failing value (after " << shrink_steps
        << " shrink step(s)):\n";
  } else {
    out << "failing value:\n";
  }
  out << "  " << described << "\n"
      << "reproduce this exact case with:\n"
      << "  RLBLH_PROPTEST_SEED=" << seed << "\n";
  const std::string message = out.str();
  std::fprintf(stderr, "%s", message.c_str());
  std::fflush(stderr);
  return message;
}

}  // namespace rlblh::proptest::detail
