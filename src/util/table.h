// Fixed-width console table printer for benchmark/experiment output.
//
// The figure-reproduction binaries print the same rows/series the paper's
// plots show; TablePrinter keeps that output aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rlblh {

/// Collects string/number cells row by row and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// Starts a table with the given column headings.
  explicit TablePrinter(std::vector<std::string> columns);

  /// Appends a row of pre-formatted cells; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for callers).
  static std::string num(double v, int precision = 4);

  /// Renders the table (header, separator, rows) to the stream.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rlblh
