#include "util/histogram.h"

#include <algorithm>
#include <cmath>

namespace rlblh {

Histogram::Histogram(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  RLBLH_REQUIRE(bins >= 1, "Histogram: need at least one bin");
  RLBLH_REQUIRE(lo < hi, "Histogram: lo must be < hi");
}

void Histogram::add(double x) { add_weighted(x, 1.0); }

void Histogram::add_weighted(double x, double weight) {
  RLBLH_REQUIRE(weight >= 0.0, "Histogram: weight must be >= 0");
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

std::size_t Histogram::bin_index(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

double Histogram::bin_center(std::size_t i) const {
  RLBLH_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::count(std::size_t i) const {
  RLBLH_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  return counts_[i];
}

double Histogram::probability(std::size_t i) const {
  if (total_ == 0.0) return 0.0;
  return count(i) / total_;
}

double Histogram::entropy_bits() const {
  if (total_ == 0.0) return 0.0;
  double h = 0.0;
  for (const double c : counts_) {
    if (c <= 0.0) continue;
    const double p = c / total_;
    h -= p * std::log2(p);
  }
  return h;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  total_ = 0.0;
}

}  // namespace rlblh
