#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

namespace rlblh {

Histogram::Histogram(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  RLBLH_REQUIRE(bins >= 1, "Histogram: need at least one bin");
  RLBLH_REQUIRE(lo < hi, "Histogram: lo must be < hi");
}

void Histogram::add(double x) { add_weighted(x, 1.0); }

void Histogram::add_weighted(double x, double weight) {
  RLBLH_REQUIRE(weight >= 0.0, "Histogram: weight must be >= 0");
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

std::size_t Histogram::bin_index(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

double Histogram::bin_center(std::size_t i) const {
  RLBLH_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::count(std::size_t i) const {
  RLBLH_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  return counts_[i];
}

double Histogram::probability(std::size_t i) const {
  if (total_ == 0.0) return 0.0;
  return count(i) / total_;
}

double Histogram::entropy_bits() const {
  if (total_ == 0.0) return 0.0;
  double h = 0.0;
  for (const double c : counts_) {
    if (c <= 0.0) continue;
    const double p = c / total_;
    h -= p * std::log2(p);
  }
  return h;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  total_ = 0.0;
}

void Histogram::save(std::ostream& out) const {
  const auto precision = out.precision(17);
  out << "hist " << counts_.size() << ' ' << lo_ << ' ' << hi_ << ' '
      << total_ << '\n';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) out << ' ';
    out << counts_[i];
  }
  out << '\n';
  out.precision(precision);
}

void Histogram::load(std::istream& in) {
  std::string word;
  std::size_t bins = 0;
  double lo = 0.0, hi = 0.0, total = 0.0;
  if (!(in >> word >> bins >> lo >> hi >> total) || word != "hist") {
    throw DataError("Histogram::load: malformed header");
  }
  if (bins != counts_.size() || lo != lo_ || hi != hi_) {
    throw DataError("Histogram::load: geometry mismatch");
  }
  std::vector<double> counts(bins, 0.0);
  for (std::size_t i = 0; i < bins; ++i) {
    if (!(in >> counts[i]) || counts[i] < 0.0) {
      throw DataError("Histogram::load: malformed count");
    }
  }
  if (total < 0.0) throw DataError("Histogram::load: negative total");
  counts_ = std::move(counts);
  total_ = total;
}

}  // namespace rlblh
