#include "util/thread_pool.h"

#include <cstdlib>
#include <string>

#include "util/error.h"

namespace rlblh {

ThreadPool::ThreadPool(std::size_t threads) {
  RLBLH_REQUIRE(threads >= 1, "ThreadPool: need at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    RLBLH_REQUIRE(!stopping_, "ThreadPool: submit() after shutdown began");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and fully drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // packaged_task captures any exception into its future; a raw callable
    // that throws would terminate, matching std::thread semantics.
    task();
  }
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("RLBLH_THREADS")) {
    try {
      const long parsed = std::stol(env);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    } catch (const std::exception&) {
      // Fall through to hardware detection on an unparsable value.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace rlblh
