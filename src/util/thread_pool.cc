#include "util/thread_pool.h"

#include <cstdlib>
#include <string>

#include "util/error.h"

namespace rlblh {

ThreadPool::ThreadPool(std::size_t threads) {
  RLBLH_REQUIRE(threads >= 1, "ThreadPool: need at least one worker");
  RLBLH_OBS_GAUGE("pool.workers", threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  Task entry;
  entry.run = std::move(task);
  if (obs::enabled()) {
    entry.enqueued = std::chrono::steady_clock::now();
  }
  [[maybe_unused]] std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    RLBLH_REQUIRE(!stopping_, "ThreadPool: submit() after shutdown began");
    tasks_.push(std::move(entry));
    depth = tasks_.size();
  }
  RLBLH_OBS_COUNT("pool.tasks_submitted", 1);
  RLBLH_OBS_OBSERVE("pool.queue_depth", depth);
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and fully drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Wait/busy accounting only when recording; the timestamps cost two
    // clock reads per task, which is noise against whole-experiment cells.
    if (obs::enabled() &&
        task.enqueued != std::chrono::steady_clock::time_point{}) {
      [[maybe_unused]] const auto started = std::chrono::steady_clock::now();
      RLBLH_OBS_OBSERVE(
          "pool.task_wait_ns",
          std::chrono::duration_cast<std::chrono::nanoseconds>(started -
                                                               task.enqueued)
              .count());
      task.run();
      RLBLH_OBS_COUNT("pool.busy_ns",
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - started)
                          .count());
      RLBLH_OBS_COUNT("pool.tasks_completed", 1);
      continue;
    }
    // packaged_task captures any exception into its future; a raw callable
    // that throws would terminate, matching std::thread semantics.
    task.run();
    RLBLH_OBS_COUNT("pool.tasks_completed", 1);
  }
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("RLBLH_THREADS")) {
    try {
      const long parsed = std::stol(env);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    } catch (const std::exception&) {
      // Fall through to hardware detection on an unparsable value.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace rlblh
