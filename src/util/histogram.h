// Fixed-bin histogram over a closed interval, with entropy computation.
//
// Used by the privacy metrics (entropy of quantized usage windows) and by the
// per-interval usage statistics that drive the synthetic-data heuristic.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "util/error.h"

namespace rlblh {

/// Histogram with `bins` equal-width cells covering [lo, hi]. Values outside
/// the range are clamped into the boundary cells, so every added value is
/// counted exactly once.
class Histogram {
 public:
  /// Creates an empty histogram. Requires bins >= 1 and lo < hi.
  Histogram(std::size_t bins, double lo, double hi);

  /// Adds one observation (weight 1).
  void add(double x);

  /// Adds one observation with the given non-negative weight.
  void add_weighted(double x, double weight);

  /// Index of the cell that value x falls into (after clamping).
  std::size_t bin_index(double x) const;

  /// Midpoint value of cell i. Requires i < bins().
  double bin_center(std::size_t i) const;

  /// Number of cells.
  std::size_t bins() const { return counts_.size(); }

  /// Lower bound of the covered interval.
  double lo() const { return lo_; }

  /// Upper bound of the covered interval.
  double hi() const { return hi_; }

  /// Total weight added so far.
  double total() const { return total_; }

  /// Weight in cell i.
  double count(std::size_t i) const;

  /// Probability mass of cell i (count / total); 0 when empty.
  double probability(std::size_t i) const;

  /// Shannon entropy of the cell distribution in bits; 0 when empty.
  double entropy_bits() const;

  /// Removes all mass.
  void reset();

  /// Writes the accumulated mass (counts and total, full precision) to a
  /// stream. Geometry (bins, lo, hi) is the constructor's business and is
  /// echoed only for validation.
  void save(std::ostream& out) const;

  /// Restores mass written by save() into a histogram of identical
  /// geometry. The stored total is adopted verbatim (not recomputed), so a
  /// save/load round-trip is bitwise exact. Throws DataError on malformed
  /// input or geometry mismatch.
  void load(std::istream& in);

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace rlblh
