// Uniform scalar quantizer used by the privacy metrics and the MDP baseline.
#pragma once

#include <algorithm>
#include <cstddef>

#include "util/error.h"

namespace rlblh {

/// Maps values in [lo, hi] to `levels` evenly spaced representative points
/// lo, lo+step, ..., hi (step = (hi-lo)/(levels-1)), i.e. the same spacing
/// rule the paper uses for pulse magnitudes in Eq. (5).
class Quantizer {
 public:
  /// Requires levels >= 2 and lo < hi.
  Quantizer(std::size_t levels, double lo, double hi)
      : levels_(levels), lo_(lo), hi_(hi),
        step_((hi - lo) / static_cast<double>(levels - 1)) {
    RLBLH_REQUIRE(levels >= 2, "Quantizer: need at least two levels");
    RLBLH_REQUIRE(lo < hi, "Quantizer: lo must be < hi");
  }

  /// Number of representative levels.
  std::size_t levels() const { return levels_; }

  /// Index of the nearest level for x (values outside [lo, hi] clamp).
  std::size_t index(double x) const {
    const double clamped = std::clamp(x, lo_, hi_);
    const double i = (clamped - lo_) / step_ + 0.5;
    return std::min(static_cast<std::size_t>(i), levels_ - 1);
  }

  /// Representative value of level i. Requires i < levels().
  double value(std::size_t i) const {
    RLBLH_REQUIRE(i < levels_, "Quantizer: level index out of range");
    return lo_ + static_cast<double>(i) * step_;
  }

  /// Quantizes x to its nearest representative value.
  double quantize(double x) const { return value(index(x)); }

  /// Spacing between adjacent levels.
  double step() const { return step_; }

 private:
  std::size_t levels_;
  double lo_;
  double hi_;
  double step_;
};

}  // namespace rlblh
