// Scenario registry primitives: spec strings, parameter bags and named
// component factories.
//
// A scenario spec is a semicolon-separated list of key=value pairs, e.g.
//
//   policy=rlblh;household=weekday_heavy;pricing=tou2;battery=13.5;seed=7
//
// Top-level keys select named components (policy / household / pricing) and
// set the run geometry (battery, nd, seed, ...); dotted keys such as
// `policy.alpha=0.01` or `pricing.rate=11` are forwarded verbatim to the
// selected component's factory. This header provides the pieces the
// per-component registries (pricing_registry, household_registry,
// policy_registry) and the scenario assembler (sim/scenario.h) share:
//
//   * SpecParams  — an ordered key->value bag with typed accessors and
//                   strict unknown-key rejection, so a typo in a spec fails
//                   loudly instead of silently running the default;
//   * parse_spec  — the `k=v;k2=v2` grammar;
//   * Registry<T> — a string -> factory map with deterministic listing,
//                   shared by every component family.
//
// Header-only on purpose: every subsystem library (pricing, meter,
// baselines) hosts its own factory table without acquiring a link edge back
// to rlblh_core.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"

namespace rlblh {

/// Ordered key -> value parameter bag of one spec (or one component's slice
/// of a spec). Keys are unique; insertion order is preserved for canonical
/// printing.
class SpecParams {
 public:
  SpecParams() = default;

  /// Sets (or replaces) a key. Values are stored as strings; the double
  /// overload formats losslessly (%.17g) so a value survives the
  /// spec -> string -> spec round trip bitwise.
  void set(const std::string& key, std::string value) {
    RLBLH_REQUIRE(!key.empty(), "SpecParams: key must be nonempty");
    auto it = values_.find(key);
    if (it == values_.end()) {
      values_.emplace(key, std::move(value));
      order_.push_back(key);
    } else {
      it->second = std::move(value);
    }
  }
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }
  void set(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    set(key, std::string(buffer));
  }
  void set(const std::string& key, std::uint64_t value) {
    set(key, std::to_string(value));
  }
  void set(const std::string& key, int value) {
    set(key, std::to_string(value));
  }
  void set(const std::string& key, unsigned value) {
    set(key, std::to_string(value));
  }
  void set(const std::string& key, bool value) {
    set(key, std::string(value ? "1" : "0"));
  }

  /// True when the key is present.
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// Typed accessors: return the parsed value, or `fallback` when the key is
  /// absent. Throw ConfigError when the value does not parse.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const {
    const std::string* value = find(key);
    return value != nullptr ? *value : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const std::string* value = find(key);
    if (value == nullptr) return fallback;
    try {
      std::size_t consumed = 0;
      const double parsed = std::stod(*value, &consumed);
      if (consumed != value->size()) throw std::invalid_argument(*value);
      return parsed;
    } catch (const std::exception&) {
      throw ConfigError("spec key '" + key + "': '" + *value +
                        "' is not a number");
    }
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const std::string* value = find(key);
    if (value == nullptr) return fallback;
    try {
      std::size_t consumed = 0;
      const unsigned long long parsed = std::stoull(*value, &consumed);
      if (consumed != value->size()) throw std::invalid_argument(*value);
      return static_cast<std::uint64_t>(parsed);
    } catch (const std::exception&) {
      throw ConfigError("spec key '" + key + "': '" + *value +
                        "' is not a non-negative integer");
    }
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    return static_cast<std::size_t>(get_u64(key, fallback));
  }
  bool get_bool(const std::string& key, bool fallback) const {
    const std::string* value = find(key);
    if (value == nullptr) return fallback;
    if (*value == "1" || *value == "true" || *value == "on" ||
        *value == "yes") {
      return true;
    }
    if (*value == "0" || *value == "false" || *value == "off" ||
        *value == "no") {
      return false;
    }
    throw ConfigError("spec key '" + key + "': '" + *value +
                      "' is not a boolean (use 0/1/true/false/on/off)");
  }

  /// Throws ConfigError when any present key is not in `allowed` — the
  /// strictness that turns spec typos into errors. `context` names the
  /// component for the message.
  void allow_only(const std::vector<std::string>& allowed,
                  const std::string& context) const {
    for (const auto& key : order_) {
      bool known = false;
      for (const auto& candidate : allowed) {
        if (key == candidate) {
          known = true;
          break;
        }
      }
      if (known) continue;
      std::string accepted;
      for (const auto& candidate : allowed) {
        if (!accepted.empty()) accepted += ", ";
        accepted += candidate;
      }
      throw ConfigError(
          context + ": unknown parameter '" + key +
          "' (accepted: " + (accepted.empty() ? "none" : accepted) + ")");
    }
  }

  /// Number of keys.
  std::size_t size() const { return order_.size(); }

  /// True when no key is set.
  bool empty() const { return order_.empty(); }

  /// Keys in insertion order.
  const std::vector<std::string>& keys() const { return order_; }

  /// Canonical `k=v;k2=v2` rendering in insertion order (empty string when
  /// empty).
  std::string canonical() const {
    std::string out;
    for (const auto& key : order_) {
      if (!out.empty()) out += ';';
      out += key;
      out += '=';
      out += values_.at(key);
    }
    return out;
  }

 private:
  const std::string* find(const std::string& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
  }

  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

/// Parses the `k=v;k2=v2` spec grammar. Empty segments are ignored (so a
/// trailing ';' is fine); a segment without '=' or with an empty key is a
/// ConfigError. Duplicate keys keep the last value.
inline SpecParams parse_spec(const std::string& spec) {
  SpecParams params;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string segment = spec.substr(begin, end - begin);
    begin = end + 1;
    if (segment.empty()) continue;
    const std::size_t eq = segment.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError("spec segment '" + segment +
                        "' is not of the form key=value");
    }
    params.set(segment.substr(0, eq), segment.substr(eq + 1));
  }
  return params;
}

/// A named-factory table for one component family. Factories take the
/// component's parameter slice and return a built component; names() is
/// sorted so listings and error messages are deterministic.
template <typename T>
class Registry {
 public:
  using Factory = std::function<T(const SpecParams&)>;

  /// Registers a factory under a primary name plus optional aliases.
  /// Re-registering a name is a ConfigError (catches double registration).
  void add(const std::string& name, Factory factory,
           const std::vector<std::string>& aliases = {}) {
    add_one(name, factory, /*is_alias=*/false);
    for (const auto& alias : aliases) add_one(alias, factory, true);
  }

  /// True when `name` (or an alias) is registered.
  bool contains(const std::string& name) const {
    return factories_.find(name) != factories_.end();
  }

  /// Builds the named component. Unknown names raise ConfigError listing
  /// every registered name.
  T create(const std::string& name, const SpecParams& params) const {
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& candidate : names()) {
        if (!known.empty()) known += ", ";
        known += candidate;
      }
      throw ConfigError("unknown " + family_ + " '" + name +
                        "' (registered: " + known + ")");
    }
    return it->second(params);
  }

  /// Primary names, sorted (aliases excluded so listings stay short).
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    for (const auto& [name, factory] : factories_) {
      if (!is_alias_.at(name)) out.push_back(name);
    }
    return out;  // std::map iteration is already sorted
  }

  /// Names the family in error messages, e.g. "pricing plan".
  void set_family(std::string family) { family_ = std::move(family); }

 private:
  void add_one(const std::string& name, const Factory& factory,
               bool is_alias) {
    RLBLH_REQUIRE(!name.empty(), "Registry: component name must be nonempty");
    if (!factories_.emplace(name, factory).second) {
      throw ConfigError("Registry: duplicate registration of '" + name + "'");
    }
    is_alias_.emplace(name, is_alias);
  }

  std::string family_ = "component";
  std::map<std::string, Factory> factories_;
  std::map<std::string, bool> is_alias_;
};

}  // namespace rlblh
