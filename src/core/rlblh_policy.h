// RL-BLH battery controller (paper Algorithm 1).
//
// The policy shapes meter readings into rectangular pulses of width n_D
// intervals. At the start of each decision interval k it observes the
// battery level B_k, restricts the feasible pulse magnitudes so the battery
// can neither overflow nor run dry (Section III-B), picks a magnitude by
// epsilon-greedy over the learned Q function, and after the interval
// completes performs the Q-learning update of Eq. (17)-(18) on the linear
// approximator of Eq. (13). At the end of each day the OUTER LOOP heuristics
// run: replaying the day's own data (REUSE, Section V-B) and replaying
// synthetic days sampled from the per-interval usage statistics (SYN,
// Section V-A).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "core/features.h"
#include "core/policy.h"
#include "core/qfunction.h"
#include "meter/usage_stats.h"
#include "util/rng.h"

namespace rlblh {

/// Per-day learning diagnostics.
struct RlBlhDayStats {
  double mean_abs_td_error = 0.0;  ///< mean |Delta Q| over the day's decisions
  double signed_td_error = 0.0;    ///< sum of Delta Q (paper Eq. 23)
  double realized_savings = 0.0;   ///< sum_k S_k(a) in cents
  std::size_t exploring_decisions = 0;  ///< decisions taken by exploration
};

/// The RL-BLH controller.
class RlBlhPolicy final : public BlhPolicy {
 public:
  /// Validates and adopts the configuration.
  explicit RlBlhPolicy(RlBlhConfig config);

  // --- BlhPolicy -------------------------------------------------------
  void begin_day(const TouSchedule& prices) override;
  double reading(std::size_t n, double battery_level) override;
  void observe_usage(std::size_t n, double usage) override;
  void end_day() override;
  std::string_view name() const override { return "rl-blh"; }

  // Pulse-block fast path: one decision per n_D-wide block, bitwise
  // identical to driving reading()/observe_usage() per interval.
  std::size_t pulse_width() const override {
    return config_.decision_interval;
  }
  double fill_block(std::size_t n0, std::size_t width,
                    double battery_level) override;
  void observe_block(std::size_t n0, ConstTraceLane usage) override;

  // Lane-native batch entry points (engine contract: every element of
  // `lanes` is an RlBlhPolicy and lanes[0] == this). One virtual call
  // decides/observes all W lanes; per lane the arithmetic and its RNG draw
  // order are exactly fill_block/observe_block's, with every lane's
  // epsilon coin drawn in one lane-batched pass (each from its own
  // engine, in its scalar stream position).
  void fill_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                  std::size_t width, const double* levels,
                  double* y_out) override;
  void observe_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                     const LaneBlock& usage) override;

  // Checkpoint/restore (DESIGN.md §15). Persists everything that shapes
  // future behavior — both weight tables, the RNG stream, the usage
  // statistics, episode/day counters and the learning/exploration toggles —
  // but not the day_stats() diagnostic history. Only legal between days.
  bool checkpointable() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  // --- control ----------------------------------------------------------
  /// Enables/disables weight updates (on by default). With learning off the
  /// policy acts greedily on its current weights and skips the heuristics.
  void set_learning_enabled(bool enabled) { learning_ = enabled; }

  /// Enables/disables epsilon exploration (on by default). Disable for
  /// deterministic evaluation of a learned policy.
  void set_exploration_enabled(bool enabled) { exploration_ = enabled; }

  /// True while weight updates are enabled.
  bool learning_enabled() const { return learning_; }

  /// True while epsilon exploration is enabled.
  bool exploration_enabled() const { return exploration_; }

  // --- introspection ----------------------------------------------------
  /// Configuration in effect.
  const RlBlhConfig& config() const { return config_; }

  /// Number of completed real days.
  std::size_t days_completed() const { return day_; }

  /// Number of completed training episodes (real days plus REUSE/SYN
  /// replays); drives the hyper-parameter decay when
  /// config().decay_by_episodes is set.
  std::size_t episodes_completed() const { return episodes_; }

  /// Learning rate that will apply to the current/next day.
  double current_alpha() const;

  /// Exploration rate that will apply to the current/next day.
  double current_epsilon() const;

  /// Per-real-day diagnostics, one entry per completed day.
  const std::vector<RlBlhDayStats>& day_stats() const { return day_stats_; }

  /// The learned action-value function (the first table under double-Q).
  const PerActionLinearQ& q() const { return q_; }

  /// Mutable access (for warm-starting or ablation solvers).
  PerActionLinearQ& q() { return q_; }

  /// The second table; only trained when config().double_q is set.
  const PerActionLinearQ& q2() const { return q2_; }

  /// Mutable access to the second table.
  PerActionLinearQ& q2() { return q2_; }

  /// Per-interval usage statistics gathered so far (drives SYN mode).
  const UsageStatsTracker& usage_stats() const { return stats_; }

  /// Feasible actions at the given battery level (Section III-B): only
  /// action 0 above the high guard, only the maximum action below the low
  /// guard, every action in between. Returns a reference to one of three
  /// precomputed sets (the decision loop calls this twice per decision, so
  /// it must not allocate).
  const std::vector<std::size_t>& allowed_actions(double battery_level) const;

  /// Pulse magnitude (kWh per interval) of action a.
  double action_magnitude(std::size_t a) const {
    return config_.action_magnitude(a);
  }

  /// Runs one offline training day on the given usage series (length n_M)
  /// against the current day's price schedule, starting from
  /// `initial_level`. This is the INNER LOOP in REUSE/SYN mode; exposed for
  /// tests and ablations. Returns the day's mean |Delta Q|.
  double train_virtual_day(const std::vector<double>& usage,
                           double initial_level);

 private:
  /// Feasibility + epsilon-greedy choice at decision index k.
  std::size_t choose_action(std::size_t k, double battery_level,
                            double epsilon_now);

  /// Q-learning update for the pending decision, given the successor state
  /// (ignored when terminal). Accumulates the day's error statistics.
  void finalize_pending(std::size_t next_k, double next_level, bool terminal,
                        double alpha_now);

  /// Greedy action over the acting value function (the mean of the two
  /// tables under double-Q, plain Q otherwise).
  std::size_t acting_argmax(std::span<const double> features,
                            const std::vector<std::size_t>& allowed) const;

  /// Bootstrap target contribution max_a' Q(next) under the configured
  /// learning rule; `use_first` selects the table updated this step.
  double bootstrap_value(std::span<const double> features,
                         const std::vector<std::size_t>& allowed,
                         bool use_first) const;

  RlBlhConfig config_;
  FeatureBasis basis_;
  PerActionLinearQ q_;
  PerActionLinearQ q2_;
  UsageStatsTracker stats_;
  Rng rng_;

  // Precomputed feasible-action sets (see allowed_actions()).
  std::vector<std::size_t> actions_all_;
  std::vector<std::size_t> actions_zero_only_;
  std::vector<std::size_t> actions_max_only_;

  bool learning_ = true;
  bool exploration_ = true;

  // Day-scoped state.
  std::optional<TouSchedule> prices_;
  bool day_open_ = false;
  std::size_t next_reading_n_ = 0;
  std::size_t next_observe_n_ = 0;
  std::vector<double> today_usage_;
  double initial_level_today_ = 0.0;

  // Pending decision (the pulse currently being emitted).
  bool pending_active_ = false;
  std::size_t pending_k_ = 0;
  std::size_t pending_action_ = 0;
  double pending_savings_ = 0.0;
  std::array<double, FeatureBasis::kDim> pending_features_{};
  bool pending_explored_ = false;

  // Day error accumulation.
  double abs_error_sum_ = 0.0;
  double signed_error_sum_ = 0.0;
  double savings_sum_ = 0.0;
  std::size_t decisions_done_ = 0;
  std::size_t explored_count_ = 0;

  std::size_t day_ = 0;       ///< completed real days
  std::size_t episodes_ = 0;  ///< completed inner-loop runs (real + virtual)
  std::vector<RlBlhDayStats> day_stats_;

  // fill_lanes scratch, alive only on the instance the batch engine calls
  // (lane 0). Not part of the behavioral state: never checkpointed, never
  // read across calls.
  std::vector<Rng*> lane_rngs_;
  std::vector<double> lane_eps_;
  std::vector<double> lane_coins_;
  std::vector<const std::vector<std::size_t>*> lane_allowed_;
  std::vector<std::size_t> lane_greedy_;
};

}  // namespace rlblh
