// RL-BLH hyper-parameters (paper Sections II-VII).
//
// Defaults are the paper's experiment settings (Section VII-A):
// n_M = 1440 one-minute intervals, x_M = 0.08 kWh, a_M = 8 actions,
// alpha = 0.05, epsilon = 0.1 (both decayed by 1/sqrt(d)),
// d_G = 10, d_MG = 50, t_G = 500 (synthetic-data heuristic),
// d_R = 20, t_R = 100 (reuse heuristic).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rlblh {

/// Complete configuration of an RlBlhPolicy.
struct RlBlhConfig {
  // --- problem geometry -----------------------------------------------
  std::size_t intervals_per_day = 1440;  ///< n_M
  std::size_t decision_interval = 15;    ///< n_D (pulse width in intervals)
  double usage_cap = 0.08;               ///< x_M, kWh per interval
  double battery_capacity = 5.0;         ///< b_M, kWh
  std::size_t num_actions = 8;           ///< a_M pulse-magnitude choices

  // --- learning --------------------------------------------------------
  double alpha = 0.05;           ///< base learning rate
  double epsilon = 0.1;          ///< base exploration rate
  bool decay_hyperparams = true; ///< decay alpha, epsilon by 1/sqrt(d)
  /// What "d" counts in the 1/sqrt(d) decay: wall-clock days (the paper's
  /// wording, default) or training episodes (each INNER-LOOP execution,
  /// real or replayed). The decay ablation bench compares both.
  bool decay_by_episodes = false;
  /// Floors under the decayed values. Semi-gradient Q-learning with a
  /// bootstrapped max target needs sustained (small) step size and
  /// exploration to track the moving target; letting both decay to zero
  /// freezes the weights wherever day ~50 left them, which is measurably
  /// below the converged policy (see the decay ablation bench).
  double alpha_floor = 0.005;
  double epsilon_floor = 0.05;
  /// Double Q-learning (van Hasselt): keep two weight tables, select the
  /// bootstrap action with one and evaluate it with the other, updating a
  /// random one of the two per decision. Removes the max-operator's
  /// overestimation bias — an extension in the spirit of the paper's
  /// future-work note on improving convergence. Off by default (the paper
  /// uses plain Q-learning); measured in bench/abl_double_q.
  bool double_q = false;
  /// Start REUSE/SYN replay days from a uniformly random battery level
  /// instead of the real day's start level ("exploring starts"). The DP
  /// alternative sweeps every (k, B) state; trajectory replays only cover
  /// the narrow battery tube the current policy visits, so randomizing the
  /// start widens state coverage at zero extra cost.
  bool replay_random_start = true;

  // --- heuristic: reuse of data (Section V-B) ---------------------------
  bool enable_reuse = true;
  std::size_t reuse_days = 20;     ///< d_R: replay each of the first d_R days
  std::size_t reuse_repeats = 100; ///< t_R: replays per day

  // --- heuristic: synthetic data (Section V-A) --------------------------
  bool enable_synthetic = true;
  std::size_t synthetic_period = 10;    ///< d_G: generate every d_G days
  std::size_t synthetic_last_day = 50;  ///< d_MG: stop generating after this
  std::size_t synthetic_repeats = 500;  ///< t_G: synthetic days per burst
  std::size_t stats_bins = 24;          ///< histogram bins per interval
  std::size_t stats_reservoir = 48;     ///< exact samples kept per interval

  std::uint64_t seed = 1;  ///< RNG seed for exploration and synthesis

  /// k_M: decision intervals per day. When n_D does not divide n_M the last
  /// decision interval is truncated to the remaining width, so this is the
  /// ceiling of n_M / n_D.
  std::size_t decisions_per_day() const {
    return (intervals_per_day + decision_interval - 1) / decision_interval;
  }

  /// Width in measurement intervals of decision interval k (0-based): n_D for
  /// every full pulse, the day's remainder for the last one when n_D does not
  /// divide n_M.
  std::size_t decision_width(std::size_t k) const;

  /// Pulse magnitude of action a in [0, a_M): a * x_M / (a_M - 1)
  /// (paper Eq. 5 with a shifted to 0-based).
  double action_magnitude(std::size_t a) const;

  /// Battery level above which only action 0 is feasible (no overflow):
  /// b_M - x_M * n_D.
  double high_guard() const;

  /// Battery level below which only the maximum action is feasible
  /// (no shortage): x_M * n_D.
  double low_guard() const;

  /// Throws ConfigError when any parameter is out of range, when n_D exceeds
  /// n_M, or when the battery is too small for the guard bands
  /// (b_M < 2 * x_M * n_D leaves no always-feasible region). n_D need not
  /// divide n_M: the last pulse of the day is simply truncated.
  void validate() const;
};

}  // namespace rlblh
