// The battery-control policy interface shared by RL-BLH and the baselines.
//
// A policy decides the grid draw y_n for every measurement interval. The key
// contract, inherited from the paper's system model (Section II), is that
// y_n is chosen *before* the interval's usage x_n is known — the battery is
// the buffer that absorbs the difference. The simulator drives a policy as:
//
//     policy.begin_day(prices);
//     for n in [0, n_M):
//         y = policy.reading(n, battery.level());
//         battery.step(y, x_n);
//         policy.observe_usage(n, x_n);
//     policy.end_day();
//
// Pulse-block fast path: RL-BLH readings are rectangular pulses — y_n is
// constant across each decision interval of n_D measurement intervals — so
// a policy may additionally advertise pulse_width() > 0 and serve whole
// blocks through fill_block()/observe_block(). The engine then pays one
// virtual call per block instead of two per interval and runs a tight
// non-virtual scalar loop in between. A driver must use one protocol per
// day, never mix them: either the per-interval pair above, or
//
//     policy.begin_day(prices);
//     for each block [n0, n0 + width):          // width = min(W, n_M - n0)
//         y = policy.fill_block(n0, width, battery.level());
//         for n in block: battery.step(y, x_n);
//         policy.observe_block(n0, {x_n0 .. x_n0+width-1});
//     policy.end_day();
//
// with W = pulse_width() and blocks tiling [0, n_M) in order.
//
// Lockstep batch driving: the block protocol is also the batched policy
// entry point. BatchEngine advances L same-blueprint policy instances
// through one day in lockstep — for each block it calls fill_block on every
// lane's policy, steps all L batteries as structure-of-arrays, then calls
// observe_block on every lane's policy with that lane's contiguous usage
// slice. Policies need nothing new for this: instances are independent
// (separate RNGs, separate state), so inter-lane call order is free while
// each lane still sees exactly the scalar call sequence above — which is
// what makes a batch lane bit-identical to a scalar run. A policy that
// advertises pulse_width() == 0 (no block support) simply falls back to the
// scalar per-interval engine, batched or not.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "pricing/tou.h"
#include "util/error.h"

namespace rlblh {

/// Abstract battery-control policy (one instance controls one household).
class BlhPolicy {
 public:
  virtual ~BlhPolicy() = default;

  BlhPolicy(const BlhPolicy&) = delete;
  BlhPolicy& operator=(const BlhPolicy&) = delete;

  /// Starts a new day under the given price schedule. The schedule's length
  /// defines n_M for the day.
  virtual void begin_day(const TouSchedule& prices) = 0;

  /// Returns the grid draw y_n (kWh) for interval n, given the battery level
  /// at the start of the interval. Must be callable with n strictly
  /// increasing from 0 to n_M - 1 within a day.
  virtual double reading(std::size_t n, double battery_level) = 0;

  /// Reports the realized usage x_n after interval n completed.
  virtual void observe_usage(std::size_t n, double usage) = 0;

  /// Ends the day (learning policies run their outer-loop work here).
  virtual void end_day() {}

  /// Width of the rectangular pulse this policy emits, in measurement
  /// intervals: the engine may drive the policy block-wise (see the header
  /// comment) with blocks of this width tiling the day in order, the last
  /// one truncated. 0 (the default) means no block support — the engine
  /// must use the per-interval protocol. Must stay constant within a day.
  virtual std::size_t pulse_width() const { return 0; }

  /// Returns the constant grid draw y for the whole block [n0, n0 + width),
  /// given the battery level at the start of the block. Only called when
  /// pulse_width() > 0, with n0 a multiple of pulse_width() and
  /// width = min(pulse_width(), n_M - n0). The default forwards to
  /// reading(n0, ...), which is correct for any policy whose reading is
  /// constant across the block and samples state only at block boundaries.
  virtual double fill_block(std::size_t n0, std::size_t width,
                            double battery_level) {
    (void)width;
    return reading(n0, battery_level);
  }

  /// Reports the realized usage of the whole block [n0, n0 + usage.size())
  /// after it completed. The default forwards to observe_usage() per
  /// interval; overrides must be observably identical to that loop.
  virtual void observe_block(std::size_t n0, std::span<const double> usage) {
    for (std::size_t i = 0; i < usage.size(); ++i) {
      observe_usage(n0 + i, usage[i]);
    }
  }

  /// Short stable identifier, e.g. "rl-blh" or "low-pass".
  virtual std::string_view name() const = 0;

  // --- checkpoint/restore ----------------------------------------------
  //
  // A long-lived serving process (rlblh_serve) must survive restarts
  // without relearning, so a policy may advertise full-state persistence:
  // save_state() writes everything that influences future behaviour —
  // learned weights, usage statistics, RNG engine state, decay counters —
  // and load_state() restores it such that the subsequent call sequence is
  // bitwise identical to never having serialized at all. Both are only
  // defined BETWEEN days (after end_day(), before the next begin_day());
  // day-scoped state is deliberately out of scope, which is what keeps the
  // format small and the bitwise-resume argument simple (DESIGN.md §15):
  // a restarted daemon replays the open day from the client instead.

  /// True when save_state()/load_state() are implemented. Policies without
  /// support (the default) can still serve, but restart from scratch.
  virtual bool checkpointable() const { return false; }

  /// Serializes the policy's complete between-days state. Throws
  /// ConfigError when the policy is not checkpointable or a day is open.
  virtual void save_state(std::ostream& out) const {
    (void)out;
    throw ConfigError("policy '" + std::string(name()) +
                      "' does not support checkpointing");
  }

  /// Restores state written by save_state() on a policy constructed from
  /// the identical configuration. Throws ConfigError/DataError on
  /// unsupported policies or mismatched/malformed input.
  virtual void load_state(std::istream& in) {
    (void)in;
    throw ConfigError("policy '" + std::string(name()) +
                      "' does not support checkpointing");
  }

  /// True for the no-battery reference: the simulator then reports y_n = x_n
  /// exactly (the meter measures usage directly) and skips the battery.
  virtual bool passthrough() const { return false; }

 protected:
  BlhPolicy() = default;
};

}  // namespace rlblh
