// The battery-control policy interface shared by RL-BLH and the baselines.
//
// A policy decides the grid draw y_n for every measurement interval. The key
// contract, inherited from the paper's system model (Section II), is that
// y_n is chosen *before* the interval's usage x_n is known — the battery is
// the buffer that absorbs the difference. The simulator drives a policy as:
//
//     policy.begin_day(prices);
//     for n in [0, n_M):
//         y = policy.reading(n, battery.level());
//         battery.step(y, x_n);
//         policy.observe_usage(n, x_n);
//     policy.end_day();
//
// Pulse-block fast path: RL-BLH readings are rectangular pulses — y_n is
// constant across each decision interval of n_D measurement intervals — so
// a policy may additionally advertise pulse_width() > 0 and serve whole
// blocks through fill_block()/observe_block(). The engine then pays one
// virtual call per block instead of two per interval and runs a tight
// non-virtual scalar loop in between. A driver must use one protocol per
// day, never mix them: either the per-interval pair above, or
//
//     policy.begin_day(prices);
//     for each block [n0, n0 + width):          // width = min(W, n_M - n0)
//         y = policy.fill_block(n0, width, battery.level());
//         for n in block: battery.step(y, x_n);
//         policy.observe_block(n0, {x_n0 .. x_n0+width-1});
//     policy.end_day();
//
// with W = pulse_width() and blocks tiling [0, n_M) in order.
//
// Lockstep batch driving: the block protocol is also the batched policy
// entry point, and it is lane-native. BatchEngine advances W same-blueprint
// policy instances through one day in lockstep; per block it makes ONE
// fill_lanes() call (on lane 0, with the whole lane span) that decides all
// W pulse heights, steps all W batteries as structure-of-arrays, then ONE
// observe_lanes() call with an interval-major view of the block's usage —
// O(n_M / n_D) virtual calls per batch day instead of O(W * n_M / n_D).
// The default lane entry points loop fill_block/observe_block per lane, so
// a policy needs nothing new to run batched; policies on the fleet hot
// path override them natively (devirtualized per-lane work, lane-batched
// RNG draws). Instances are independent (separate RNGs, separate state),
// so inter-lane order is free while each lane still sees exactly the
// scalar call sequence above — which is what makes a batch lane
// bit-identical to a scalar run. A policy that advertises
// pulse_width() == 0 (no block support) simply falls back to the scalar
// per-interval engine, batched or not.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "meter/trace.h"
#include "pricing/tou.h"
#include "util/error.h"

namespace rlblh {

class BlhPolicy;

/// Interval-major usage view of one pulse block across every lane of a
/// batch day: lane k's value for interval n0 + i lives at
/// data[i * lanes + k]. This is the shape the batch engine's SoA usage
/// buffer already has, so observe_lanes() reads it without any per-lane
/// copy; lane(k) carves out one household's strided series.
struct LaneBlock {
  const double* data = nullptr;  ///< slot of (first interval, lane 0)
  std::size_t lanes = 0;         ///< W — also the per-interval stride
  std::size_t width = 0;         ///< block width in intervals

  /// Lane k's usage over the block, as a strided read-only series.
  ConstTraceLane lane(std::size_t k) const {
    return ConstTraceLane(data + k, lanes, width);
  }

  /// Usage of lane k at block-relative interval i.
  double at(std::size_t i, std::size_t k) const {
    return data[i * lanes + k];
  }
};

/// Abstract battery-control policy (one instance controls one household).
class BlhPolicy {
 public:
  virtual ~BlhPolicy() = default;

  BlhPolicy(const BlhPolicy&) = delete;
  BlhPolicy& operator=(const BlhPolicy&) = delete;

  /// Starts a new day under the given price schedule. The schedule's length
  /// defines n_M for the day.
  virtual void begin_day(const TouSchedule& prices) = 0;

  /// Returns the grid draw y_n (kWh) for interval n, given the battery level
  /// at the start of the interval. Must be callable with n strictly
  /// increasing from 0 to n_M - 1 within a day.
  virtual double reading(std::size_t n, double battery_level) = 0;

  /// Reports the realized usage x_n after interval n completed.
  virtual void observe_usage(std::size_t n, double usage) = 0;

  /// Ends the day (learning policies run their outer-loop work here).
  virtual void end_day() {}

  /// Width of the rectangular pulse this policy emits, in measurement
  /// intervals: the engine may drive the policy block-wise (see the header
  /// comment) with blocks of this width tiling the day in order, the last
  /// one truncated. 0 (the default) means no block support — the engine
  /// must use the per-interval protocol. Must stay constant within a day.
  virtual std::size_t pulse_width() const { return 0; }

  /// Returns the constant grid draw y for the whole block [n0, n0 + width),
  /// given the battery level at the start of the block. Only called when
  /// pulse_width() > 0, with n0 a multiple of pulse_width() and
  /// width = min(pulse_width(), n_M - n0). The default forwards to
  /// reading(n0, ...), which is correct for any policy whose reading is
  /// constant across the block and samples state only at block boundaries.
  virtual double fill_block(std::size_t n0, std::size_t width,
                            double battery_level) {
    (void)width;
    return reading(n0, battery_level);
  }

  /// Reports the realized usage of the whole block [n0, n0 + usage.size())
  /// after it completed. The view may be strided (one lane of a batch
  /// day's interval-major buffer) or contiguous — a DayTrace or span
  /// converts implicitly. The default forwards to observe_usage() per
  /// interval; overrides must be observably identical to that loop.
  /// (Defined out of line on purpose: with the body visible, the scalar
  /// engine's per-block call gets speculatively devirtualized against the
  /// default, which pessimizes every policy that overrides it.)
  virtual void observe_block(std::size_t n0, ConstTraceLane usage);

  // --- lane-native batch protocol --------------------------------------
  //
  // One virtual call serves all W lanes of a lockstep batch. The engine
  // only calls these on lanes[0] after verifying every lane shares
  // lanes[0]'s name(), pulse_width() and passthrough() — so a native
  // override may static_cast its peers to its own concrete type. The
  // defaults loop the scalar block calls per lane, preserving today's
  // exact call and RNG order; native overrides must keep each lane's own
  // engine seeing its draws in exactly the scalar order (interleaving
  // *across* lanes is free, reordering *within* a lane is not).

  /// Decides the pulse height of block [n0, n0 + width) for every lane:
  /// y_out[k] = lane k's grid draw, given battery level levels[k]. Both
  /// arrays have lanes.size() entries; lanes[k] is the policy instance of
  /// lane k (lanes[0] == this).
  virtual void fill_lanes(std::span<BlhPolicy* const> lanes, std::size_t n0,
                          std::size_t width, const double* levels,
                          double* y_out) {
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      y_out[k] = lanes[k]->fill_block(n0, width, levels[k]);
    }
  }

  /// Reports the realized usage of block [n0, n0 + usage.width) for every
  /// lane at once, as an interval-major view (usage.lanes == lanes.size()).
  virtual void observe_lanes(std::span<BlhPolicy* const> lanes,
                             std::size_t n0, const LaneBlock& usage) {
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      lanes[k]->observe_block(n0, usage.lane(k));
    }
  }

  /// Short stable identifier, e.g. "rl-blh" or "low-pass".
  virtual std::string_view name() const = 0;

  // --- checkpoint/restore ----------------------------------------------
  //
  // A long-lived serving process (rlblh_serve) must survive restarts
  // without relearning, so a policy may advertise full-state persistence:
  // save_state() writes everything that influences future behaviour —
  // learned weights, usage statistics, RNG engine state, decay counters —
  // and load_state() restores it such that the subsequent call sequence is
  // bitwise identical to never having serialized at all. Both are only
  // defined BETWEEN days (after end_day(), before the next begin_day());
  // day-scoped state is deliberately out of scope, which is what keeps the
  // format small and the bitwise-resume argument simple (DESIGN.md §15):
  // a restarted daemon replays the open day from the client instead.

  /// True when save_state()/load_state() are implemented. Policies without
  /// support (the default) can still serve, but restart from scratch.
  virtual bool checkpointable() const { return false; }

  /// Serializes the policy's complete between-days state. Throws
  /// ConfigError when the policy is not checkpointable or a day is open.
  virtual void save_state(std::ostream& out) const {
    (void)out;
    throw ConfigError("policy '" + std::string(name()) +
                      "' does not support checkpointing");
  }

  /// Restores state written by save_state() on a policy constructed from
  /// the identical configuration. Throws ConfigError/DataError on
  /// unsupported policies or mismatched/malformed input.
  virtual void load_state(std::istream& in) {
    (void)in;
    throw ConfigError("policy '" + std::string(name()) +
                      "' does not support checkpointing");
  }

  /// True for the no-battery reference: the simulator then reports y_n = x_n
  /// exactly (the meter measures usage directly) and skips the battery.
  virtual bool passthrough() const { return false; }

 protected:
  BlhPolicy() = default;
};

}  // namespace rlblh
