// The battery-control policy interface shared by RL-BLH and the baselines.
//
// A policy decides the grid draw y_n for every measurement interval. The key
// contract, inherited from the paper's system model (Section II), is that
// y_n is chosen *before* the interval's usage x_n is known — the battery is
// the buffer that absorbs the difference. The simulator drives a policy as:
//
//     policy.begin_day(prices);
//     for n in [0, n_M):
//         y = policy.reading(n, battery.level());
//         battery.step(y, x_n);
//         policy.observe_usage(n, x_n);
//     policy.end_day();
#pragma once

#include <cstddef>
#include <string_view>

#include "pricing/tou.h"

namespace rlblh {

/// Abstract battery-control policy (one instance controls one household).
class BlhPolicy {
 public:
  virtual ~BlhPolicy() = default;

  BlhPolicy(const BlhPolicy&) = delete;
  BlhPolicy& operator=(const BlhPolicy&) = delete;

  /// Starts a new day under the given price schedule. The schedule's length
  /// defines n_M for the day.
  virtual void begin_day(const TouSchedule& prices) = 0;

  /// Returns the grid draw y_n (kWh) for interval n, given the battery level
  /// at the start of the interval. Must be callable with n strictly
  /// increasing from 0 to n_M - 1 within a day.
  virtual double reading(std::size_t n, double battery_level) = 0;

  /// Reports the realized usage x_n after interval n completed.
  virtual void observe_usage(std::size_t n, double usage) = 0;

  /// Ends the day (learning policies run their outer-loop work here).
  virtual void end_day() {}

  /// Short stable identifier, e.g. "rl-blh" or "low-pass".
  virtual std::string_view name() const = 0;

  /// True for the no-battery reference: the simulator then reports y_n = x_n
  /// exactly (the meter measures usage directly) and skips the battery.
  virtual bool passthrough() const { return false; }

 protected:
  BlhPolicy() = default;
};

}  // namespace rlblh
