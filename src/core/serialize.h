// Persistence for learned action-value functions.
//
// A deployed controller must survive restarts without relearning from
// scratch (the whole point of the 48-weight footprint is that the learned
// state is trivially small). The format is a line-oriented text file:
//
//     rlblh-weights v1
//     actions <a_M> features <dim>
//     <w_0> <w_1> ... <w_{dim-1}>      # one line per action, in order
//
// Loading validates the header and dimensions and fails loudly on any
// mismatch or malformed number.
#pragma once

#include <iosfwd>
#include <string>

#include "battery/battery.h"
#include "core/qfunction.h"
#include "util/rng.h"

namespace rlblh {

/// Writes the weight tables to a stream in the v1 text format.
void save_weights(std::ostream& out, const PerActionLinearQ& q);

/// Parses a v1 weight file. Throws DataError on malformed input.
PerActionLinearQ load_weights(std::istream& in);

/// File convenience wrappers. Throw DataError when the file cannot be
/// opened.
void save_weights_file(const std::string& path, const PerActionLinearQ& q);
PerActionLinearQ load_weights_file(const std::string& path);

// --- checkpoint primitives (daemon restart path) -------------------------
//
// rlblh_serve persists each household's full controller state at day
// boundaries; these are the shared building blocks. Everything is
// line-oriented text at max_digits10 precision, which round-trips IEEE
// doubles exactly — the same "bitwise through text" property the weight
// format has relied on since v1.

/// Writes the RNG engine state (std::mt19937_64's 312-word state plus
/// position) on one line.
void save_rng(std::ostream& out, const Rng& rng);

/// Restores an Rng whose subsequent draw stream is bitwise identical to the
/// saved generator's. Throws DataError on malformed input.
Rng load_rng(std::istream& in);

/// Writes the battery's dynamic state: level and the cumulative violation
/// accounting. Capacity/efficiencies are configuration, echoed only for
/// validation on load.
void save_battery(std::ostream& out, const Battery& battery);

/// Restores state written by save_battery into a battery constructed with
/// the identical configuration. Throws DataError on mismatch.
void load_battery(std::istream& in, Battery& battery);

}  // namespace rlblh
