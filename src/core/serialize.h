// Persistence for learned action-value functions.
//
// A deployed controller must survive restarts without relearning from
// scratch (the whole point of the 48-weight footprint is that the learned
// state is trivially small). The format is a line-oriented text file:
//
//     rlblh-weights v1
//     actions <a_M> features <dim>
//     <w_0> <w_1> ... <w_{dim-1}>      # one line per action, in order
//
// Loading validates the header and dimensions and fails loudly on any
// mismatch or malformed number.
#pragma once

#include <iosfwd>
#include <string>

#include "core/qfunction.h"

namespace rlblh {

/// Writes the weight tables to a stream in the v1 text format.
void save_weights(std::ostream& out, const PerActionLinearQ& q);

/// Parses a v1 weight file. Throws DataError on malformed input.
PerActionLinearQ load_weights(std::istream& in);

/// File convenience wrappers. Throw DataError when the file cannot be
/// opened.
void save_weights_file(const std::string& path, const PerActionLinearQ& q);
PerActionLinearQ load_weights_file(const std::string& path);

}  // namespace rlblh
