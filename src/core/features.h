// Feature basis for the approximate action-value function (paper Table I).
//
// Q(k, B_k, a) is approximated per action as a linear combination of six
// features of the normalized decision index K = k / k_M and the normalized
// battery level B = B_k / b_M. Table I lists the raw monomials
// [1, K, B, KB, K^2, B^2]; we evaluate the same six-dimensional function
// space in its shifted-Legendre parametrization
//
//     f = [ 1, P1(K), P1(B), P1(K) P1(B), P2(K), P2(B) ]
//     P1(t) = 2t - 1,   P2(t) = 6t^2 - 6t + 1
//
// which is related to the monomial basis by a fixed invertible linear map
// (verified by unit test), so every function the paper's basis can
// represent is representable here and vice versa. The reparametrization
// matters for the SGD update of Eq. (18): the monomials' Gram matrix over
// [0,1]^2 is Hilbert-like ill-conditioned, which made the semi-gradient
// iteration oscillate; the near-orthogonal Legendre polynomials make it
// stable (see DESIGN.md, "documented deviations", and the feature-basis
// ablation bench).
#pragma once

#include <array>
#include <cstddef>

#include "util/error.h"

namespace rlblh {

/// Computes Table-I feature vectors for a fixed problem geometry.
class FeatureBasis {
 public:
  /// Number of features.
  static constexpr std::size_t kDim = 6;

  /// `decisions_per_day` is k_M (>= 1); `battery_capacity` is b_M (> 0).
  FeatureBasis(std::size_t decisions_per_day, double battery_capacity)
      : k_max_(decisions_per_day), capacity_(battery_capacity) {
    RLBLH_REQUIRE(decisions_per_day >= 1,
                  "FeatureBasis: decisions_per_day must be >= 1");
    RLBLH_REQUIRE(battery_capacity > 0.0,
                  "FeatureBasis: battery capacity must be > 0");
  }

  /// Feature vector at decision index k (0-based, k <= k_M so that the
  /// terminal state can also be featurized) and battery level in kWh.
  std::array<double, kDim> at(std::size_t k, double battery_level) const;

  /// k_M used for normalization.
  std::size_t decisions_per_day() const { return k_max_; }

  /// b_M used for normalization.
  double battery_capacity() const { return capacity_; }

 private:
  std::size_t k_max_;
  double capacity_;
};

}  // namespace rlblh
