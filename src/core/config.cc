#include "core/config.h"

#include <algorithm>

#include "util/error.h"

namespace rlblh {

double RlBlhConfig::action_magnitude(std::size_t a) const {
  RLBLH_REQUIRE(a < num_actions, "RlBlhConfig: action index out of range");
  return static_cast<double>(a) * usage_cap /
         static_cast<double>(num_actions - 1);
}

std::size_t RlBlhConfig::decision_width(std::size_t k) const {
  RLBLH_REQUIRE(k < decisions_per_day(),
                "RlBlhConfig: decision index out of range");
  const std::size_t begin = k * decision_interval;
  const std::size_t end =
      std::min(begin + decision_interval, intervals_per_day);
  return end - begin;
}

double RlBlhConfig::high_guard() const {
  return battery_capacity -
         usage_cap * static_cast<double>(decision_interval);
}

double RlBlhConfig::low_guard() const {
  return usage_cap * static_cast<double>(decision_interval);
}

void RlBlhConfig::validate() const {
  RLBLH_REQUIRE(intervals_per_day >= 2,
                "RlBlhConfig: need at least two intervals per day");
  RLBLH_REQUIRE(decision_interval >= 1,
                "RlBlhConfig: decision interval must be >= 1");
  RLBLH_REQUIRE(decision_interval <= intervals_per_day,
                "RlBlhConfig: n_D must not exceed n_M");
  RLBLH_REQUIRE(usage_cap > 0.0, "RlBlhConfig: usage cap must be > 0");
  RLBLH_REQUIRE(battery_capacity > 0.0,
                "RlBlhConfig: battery capacity must be > 0");
  RLBLH_REQUIRE(num_actions >= 2, "RlBlhConfig: need at least two actions");
  RLBLH_REQUIRE(low_guard() <= high_guard(),
                "RlBlhConfig: battery too small: b_M must be >= 2 * x_M * n_D");
  RLBLH_REQUIRE(alpha > 0.0 && alpha <= 1.0,
                "RlBlhConfig: alpha must be in (0, 1]");
  RLBLH_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0,
                "RlBlhConfig: epsilon must be in [0, 1]");
  RLBLH_REQUIRE(alpha_floor >= 0.0 && alpha_floor <= alpha,
                "RlBlhConfig: alpha_floor must be in [0, alpha]");
  RLBLH_REQUIRE(epsilon_floor >= 0.0 && epsilon_floor <= epsilon,
                "RlBlhConfig: epsilon_floor must be in [0, epsilon]");
  if (enable_reuse) {
    RLBLH_REQUIRE(reuse_repeats >= 1,
                  "RlBlhConfig: reuse_repeats must be >= 1");
  }
  if (enable_synthetic) {
    RLBLH_REQUIRE(synthetic_period >= 1,
                  "RlBlhConfig: synthetic_period must be >= 1");
    RLBLH_REQUIRE(synthetic_repeats >= 1,
                  "RlBlhConfig: synthetic_repeats must be >= 1");
    RLBLH_REQUIRE(stats_bins >= 2, "RlBlhConfig: stats_bins must be >= 2");
    RLBLH_REQUIRE(stats_reservoir >= 1,
                  "RlBlhConfig: stats_reservoir must be >= 1");
  }
}

}  // namespace rlblh
