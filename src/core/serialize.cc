#include "core/serialize.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace rlblh {

namespace {
constexpr const char* kMagic = "rlblh-weights v1";
}

void save_weights(std::ostream& out, const PerActionLinearQ& q) {
  out << kMagic << '\n';
  out << "actions " << q.num_actions() << " features " << q.dimension()
      << '\n';
  out.precision(17);
  for (std::size_t a = 0; a < q.num_actions(); ++a) {
    const auto& weights = q.function(a).weights();
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (i > 0) out << ' ';
      out << weights[i];
    }
    out << '\n';
  }
}

PerActionLinearQ load_weights(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw DataError("weights: missing or wrong header (expected '" +
                    std::string(kMagic) + "')");
  }
  std::string actions_word, features_word;
  std::size_t actions = 0, dimension = 0;
  if (!std::getline(in, line)) {
    throw DataError("weights: truncated file (no dimensions line)");
  }
  {
    std::istringstream dims(line);
    if (!(dims >> actions_word >> actions >> features_word >> dimension) ||
        actions_word != "actions" || features_word != "features" ||
        actions == 0 || dimension == 0) {
      throw DataError("weights: malformed dimensions line '" + line + "'");
    }
  }
  PerActionLinearQ q(actions, dimension);
  for (std::size_t a = 0; a < actions; ++a) {
    if (!std::getline(in, line)) {
      throw DataError("weights: truncated file (expected " +
                      std::to_string(actions) + " weight rows)");
    }
    std::istringstream row(line);
    std::vector<double> weights(dimension, 0.0);
    for (std::size_t i = 0; i < dimension; ++i) {
      if (!(row >> weights[i])) {
        throw DataError("weights: malformed row for action " +
                        std::to_string(a));
      }
    }
    double extra = 0.0;
    if (row >> extra) {
      throw DataError("weights: too many values for action " +
                      std::to_string(a));
    }
    q.function(a).set_weights(std::move(weights));
  }
  return q;
}

void save_weights_file(const std::string& path, const PerActionLinearQ& q) {
  std::ofstream out(path);
  if (!out) throw DataError("weights: cannot open '" + path + "' for write");
  save_weights(out, q);
}

PerActionLinearQ load_weights_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("weights: cannot open '" + path + "'");
  return load_weights(in);
}

void save_rng(std::ostream& out, const Rng& rng) {
  // mt19937_64's stream operators serialize the full 312-word state plus
  // the position counter as decimal integers — exact by construction.
  out << "rng " << rng.engine() << '\n';
}

Rng load_rng(std::istream& in) {
  std::string word;
  if (!(in >> word) || word != "rng") {
    throw DataError("rng: missing or wrong header (expected 'rng')");
  }
  Rng rng(0);
  if (!(in >> rng.engine())) {
    throw DataError("rng: malformed engine state");
  }
  return rng;
}

void save_battery(std::ostream& out, const Battery& battery) {
  const auto precision = out.precision(17);
  out << "battery " << battery.capacity() << ' '
      << battery.charge_efficiency() << ' ' << battery.discharge_efficiency()
      << ' ' << battery.level() << ' ' << battery.violation_count() << ' '
      << battery.total_wasted_charge() << ' ' << battery.total_grid_extra()
      << '\n';
  out.precision(precision);
}

void load_battery(std::istream& in, Battery& battery) {
  std::string word;
  double capacity = 0.0, charge_eff = 0.0, discharge_eff = 0.0, level = 0.0;
  std::size_t violations = 0;
  double wasted = 0.0, grid_extra = 0.0;
  if (!(in >> word >> capacity >> charge_eff >> discharge_eff >> level >>
        violations >> wasted >> grid_extra) ||
      word != "battery") {
    throw DataError("battery: malformed state line");
  }
  if (capacity != battery.capacity() ||
      charge_eff != battery.charge_efficiency() ||
      discharge_eff != battery.discharge_efficiency()) {
    throw DataError("battery: configuration mismatch (capacity/efficiency)");
  }
  battery.restore(level, violations, wasted, grid_extra);
}

}  // namespace rlblh
