// Per-action linear action-value function (paper Eq. 13).
//
// One weight vector w^(a) per action; Q(s, a) = w^(a) . f(s). With the
// paper's defaults (a_M = 8 actions, 6 features) the whole learned state is
// 48 numbers — the complexity argument of Section VIII.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rl/linear.h"

namespace rlblh {

/// A family of linear functionals indexed by action.
class PerActionLinearQ {
 public:
  /// num_actions >= 1 weight vectors of the given feature dimension.
  PerActionLinearQ(std::size_t num_actions, std::size_t dimension);

  /// Number of actions.
  std::size_t num_actions() const { return functions_.size(); }

  /// Feature dimension.
  std::size_t dimension() const { return functions_.front().dimension(); }

  /// Q value of action a at the given features.
  double value(std::span<const double> features, std::size_t a) const;

  /// Action with the largest Q value among `allowed` (nonempty; ties break
  /// toward the earlier entry).
  std::size_t argmax(std::span<const double> features,
                     const std::vector<std::size_t>& allowed) const;

  /// max_{a in allowed} Q(features, a).
  double max_value(std::span<const double> features,
                   const std::vector<std::size_t>& allowed) const;

  /// SGD step on action a's weights: w += step * error * features (Eq. 18).
  void sgd_update(std::size_t a, std::span<const double> features,
                  double error, double step);

  /// Total number of learned parameters (a_M * 6 = 40-48 in the paper's
  /// complexity discussion).
  std::size_t parameter_count() const {
    return num_actions() * dimension();
  }

  /// Read access to one action's functional.
  const LinearFunction& function(std::size_t a) const;

  /// Mutable access (used by tests and by solvers that set weights directly).
  LinearFunction& function(std::size_t a);

 private:
  std::vector<LinearFunction> functions_;
};

}  // namespace rlblh
