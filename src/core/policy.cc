#include "core/policy.h"

namespace rlblh {

void BlhPolicy::observe_block(std::size_t n0, ConstTraceLane usage) {
  for (std::size_t i = 0; i < usage.size(); ++i) {
    observe_usage(n0 + i, usage[i]);
  }
}

}  // namespace rlblh
