#include "core/qfunction.h"

#include "util/error.h"

namespace rlblh {

PerActionLinearQ::PerActionLinearQ(std::size_t num_actions,
                                   std::size_t dimension) {
  RLBLH_REQUIRE(num_actions >= 1, "PerActionLinearQ: need >= 1 action");
  functions_.reserve(num_actions);
  for (std::size_t a = 0; a < num_actions; ++a) {
    functions_.emplace_back(dimension);
  }
}

double PerActionLinearQ::value(std::span<const double> features,
                               std::size_t a) const {
  RLBLH_REQUIRE(a < functions_.size(),
                "PerActionLinearQ: action index out of range");
  return functions_[a].value(features);
}

std::size_t PerActionLinearQ::argmax(
    std::span<const double> features,
    const std::vector<std::size_t>& allowed) const {
  RLBLH_REQUIRE(!allowed.empty(), "PerActionLinearQ: empty action set");
  std::size_t best = allowed.front();
  double best_value = value(features, best);
  for (std::size_t i = 1; i < allowed.size(); ++i) {
    const double v = value(features, allowed[i]);
    if (v > best_value) {
      best_value = v;
      best = allowed[i];
    }
  }
  return best;
}

double PerActionLinearQ::max_value(
    std::span<const double> features,
    const std::vector<std::size_t>& allowed) const {
  return value(features, argmax(features, allowed));
}

void PerActionLinearQ::sgd_update(std::size_t a,
                                  std::span<const double> features,
                                  double error, double step) {
  RLBLH_REQUIRE(a < functions_.size(),
                "PerActionLinearQ: action index out of range");
  functions_[a].sgd_update(features, error, step);
}

const LinearFunction& PerActionLinearQ::function(std::size_t a) const {
  RLBLH_REQUIRE(a < functions_.size(),
                "PerActionLinearQ: action index out of range");
  return functions_[a];
}

LinearFunction& PerActionLinearQ::function(std::size_t a) {
  RLBLH_REQUIRE(a < functions_.size(),
                "PerActionLinearQ: action index out of range");
  return functions_[a];
}

}  // namespace rlblh
