#include "core/features.h"

#include <algorithm>

namespace rlblh {

std::array<double, FeatureBasis::kDim> FeatureBasis::at(
    std::size_t k, double battery_level) const {
  RLBLH_REQUIRE(k <= k_max_, "FeatureBasis: decision index out of range");
  const double kk = static_cast<double>(k) / static_cast<double>(k_max_);
  const double bb = std::clamp(battery_level / capacity_, 0.0, 1.0);
  const double p1k = 2.0 * kk - 1.0;
  const double p1b = 2.0 * bb - 1.0;
  const double p2k = 6.0 * kk * kk - 6.0 * kk + 1.0;
  const double p2b = 6.0 * bb * bb - 6.0 * bb + 1.0;
  return {1.0, p1k, p1b, p1k * p1b, p2k, p2b};
}

}  // namespace rlblh
