#include "core/rlblh_policy.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "core/serialize.h"
#include "obs/obs.h"
#include "rl/decay.h"
#include "rl/egreedy.h"
#include "util/error.h"

namespace rlblh {

namespace {
RlBlhConfig validated(RlBlhConfig config) {
  config.validate();
  return config;
}

/// L2 norm over every weight of the table (the manifest's convergence
/// proxy: a plateauing norm with shrinking TD error means the approximator
/// has settled).
[[maybe_unused]] double weight_norm(const PerActionLinearQ& q) {
  double sum_sq = 0.0;
  for (std::size_t a = 0; a < q.num_actions(); ++a) {
    for (const double w : q.function(a).weights()) {
      sum_sq += w * w;
    }
  }
  return std::sqrt(sum_sq);
}
}  // namespace

RlBlhPolicy::RlBlhPolicy(RlBlhConfig config)
    : config_(validated(config)),
      basis_(config_.decisions_per_day(), config_.battery_capacity),
      q_(config_.num_actions, FeatureBasis::kDim),
      q2_(config_.num_actions, FeatureBasis::kDim),
      stats_(config_.intervals_per_day, config_.usage_cap, config_.stats_bins,
             config_.stats_reservoir),
      rng_(config_.seed),
      actions_all_(config_.num_actions),
      actions_zero_only_{0},
      actions_max_only_{config_.num_actions - 1} {
  for (std::size_t a = 0; a < actions_all_.size(); ++a) actions_all_[a] = a;
  day_stats_.reserve(256);
}

double RlBlhPolicy::current_alpha() const {
  if (!config_.decay_hyperparams) return config_.alpha;
  const std::size_t d = config_.decay_by_episodes ? episodes_ : day_;
  return std::max(config_.alpha_floor,
                  InverseSqrtDecay(config_.alpha).at(d + 1));
}

double RlBlhPolicy::current_epsilon() const {
  if (!config_.decay_hyperparams) return config_.epsilon;
  const std::size_t d = config_.decay_by_episodes ? episodes_ : day_;
  return std::max(config_.epsilon_floor,
                  InverseSqrtDecay(config_.epsilon).at(d + 1));
}

const std::vector<std::size_t>& RlBlhPolicy::allowed_actions(
    double battery_level) const {
  // Section III-B feasibility: above the high guard only a zero pulse is
  // safe (the battery could otherwise overflow if usage stays at zero);
  // below the low guard only the full pulse is safe (usage could stay at
  // x_M and drain the battery).
  if (battery_level > config_.high_guard()) {
    return actions_zero_only_;
  }
  if (battery_level < config_.low_guard()) {
    return actions_max_only_;
  }
  return actions_all_;
}

std::size_t RlBlhPolicy::acting_argmax(
    std::span<const double> features,
    const std::vector<std::size_t>& allowed) const {
  if (!config_.double_q) return q_.argmax(features, allowed);
  // Act on the mean of the two tables (standard double-Q practice).
  RLBLH_ASSERT(!allowed.empty());
  std::size_t best = allowed.front();
  double best_value = q_.value(features, best) + q2_.value(features, best);
  for (std::size_t i = 1; i < allowed.size(); ++i) {
    const double v = q_.value(features, allowed[i]) +
                     q2_.value(features, allowed[i]);
    if (v > best_value) {
      best_value = v;
      best = allowed[i];
    }
  }
  return best;
}

double RlBlhPolicy::bootstrap_value(std::span<const double> features,
                                    const std::vector<std::size_t>& allowed,
                                    bool use_first) const {
  if (!config_.double_q) return q_.max_value(features, allowed);
  // Select the successor action with the table being updated, evaluate it
  // with the other one: decorrelates selection and evaluation noise.
  const PerActionLinearQ& selector = use_first ? q_ : q2_;
  const PerActionLinearQ& evaluator = use_first ? q2_ : q_;
  return evaluator.value(features, selector.argmax(features, allowed));
}

std::size_t RlBlhPolicy::choose_action(std::size_t k, double battery_level,
                                       double epsilon_now) {
  const auto& allowed = allowed_actions(battery_level);
  const auto features = basis_.at(k, battery_level);
  const std::size_t greedy = acting_argmax(features, allowed);
  const std::size_t chosen =
      epsilon_greedy(allowed, greedy, epsilon_now, rng_);
  pending_explored_ = chosen != greedy;
  return chosen;
}

void RlBlhPolicy::finalize_pending(std::size_t next_k, double next_level,
                                   bool terminal, double alpha_now) {
  RLBLH_ASSERT(pending_active_);
  const bool use_first = config_.double_q ? rng_.bernoulli(0.5) : true;
  PerActionLinearQ& learner = use_first ? q_ : q2_;
  double target = pending_savings_;
  if (!terminal) {
    const auto next_features = basis_.at(next_k, next_level);
    target += bootstrap_value(next_features, allowed_actions(next_level),
                              use_first);
  }
  const double delta_q =
      target - learner.value(pending_features_, pending_action_);
  if (learning_) {
    learner.sgd_update(pending_action_, pending_features_, delta_q,
                       alpha_now);
  }
  abs_error_sum_ += std::abs(delta_q);
  signed_error_sum_ += delta_q;
  savings_sum_ += pending_savings_;
  ++decisions_done_;
  if (pending_explored_) ++explored_count_;
  pending_active_ = false;
}

void RlBlhPolicy::begin_day(const TouSchedule& prices) {
  RLBLH_REQUIRE(prices.intervals() == config_.intervals_per_day,
                "RlBlhPolicy: price schedule length must equal n_M");
  RLBLH_REQUIRE(!day_open_, "RlBlhPolicy: previous day not ended");
  prices_ = prices;
  day_open_ = true;
  next_reading_n_ = 0;
  next_observe_n_ = 0;
  today_usage_.clear();
  today_usage_.reserve(config_.intervals_per_day);
  pending_active_ = false;
  abs_error_sum_ = 0.0;
  signed_error_sum_ = 0.0;
  savings_sum_ = 0.0;
  decisions_done_ = 0;
  explored_count_ = 0;
}

double RlBlhPolicy::reading(std::size_t n, double battery_level) {
  RLBLH_REQUIRE(day_open_, "RlBlhPolicy: reading() before begin_day()");
  RLBLH_REQUIRE(n == next_reading_n_,
                "RlBlhPolicy: readings must be requested in interval order");
  RLBLH_REQUIRE(n == next_observe_n_,
                "RlBlhPolicy: interval n-1 usage not yet observed");
  RLBLH_REQUIRE(n < config_.intervals_per_day,
                "RlBlhPolicy: interval index out of range");

  if (n % config_.decision_interval == 0) {
    const std::size_t k = n / config_.decision_interval;
    if (n == 0) initial_level_today_ = battery_level;
    const double alpha_now = current_alpha();
    if (pending_active_) {
      finalize_pending(k, battery_level, /*terminal=*/false, alpha_now);
    }
    const double epsilon_now = exploration_ ? current_epsilon() : 0.0;
    const std::size_t action = choose_action(k, battery_level, epsilon_now);
    pending_active_ = true;
    pending_k_ = k;
    pending_action_ = action;
    pending_savings_ = 0.0;
    pending_features_ = basis_.at(k, battery_level);
  }
  next_reading_n_ = n + 1;
  return config_.action_magnitude(pending_action_);
}

double RlBlhPolicy::fill_block(std::size_t n0, std::size_t width,
                               double battery_level) {
  // One decision boundary per block: replicates the n % n_D == 0 branch of
  // reading() exactly (same RNG draw order: the finalize's bernoulli under
  // double-Q, then the epsilon-greedy draw), then advances the interval
  // cursor past the whole block in one step.
  RLBLH_REQUIRE(day_open_, "RlBlhPolicy: fill_block() before begin_day()");
  RLBLH_REQUIRE(n0 == next_reading_n_ && n0 == next_observe_n_,
                "RlBlhPolicy: blocks must be requested in interval order");
  RLBLH_REQUIRE(n0 % config_.decision_interval == 0,
                "RlBlhPolicy: block must start on a decision boundary");
  const std::size_t k = n0 / config_.decision_interval;
  RLBLH_REQUIRE(width == config_.decision_width(k),
                "RlBlhPolicy: block width must match the decision width");

  if (n0 == 0) initial_level_today_ = battery_level;
  const double alpha_now = current_alpha();
  if (pending_active_) {
    finalize_pending(k, battery_level, /*terminal=*/false, alpha_now);
  }
  const double epsilon_now = exploration_ ? current_epsilon() : 0.0;
  const std::size_t action = choose_action(k, battery_level, epsilon_now);
  pending_active_ = true;
  pending_k_ = k;
  pending_action_ = action;
  pending_savings_ = 0.0;
  pending_features_ = basis_.at(k, battery_level);
  next_reading_n_ = n0 + width;
  return config_.action_magnitude(pending_action_);
}

void RlBlhPolicy::observe_usage(std::size_t n, double usage) {
  RLBLH_REQUIRE(day_open_, "RlBlhPolicy: observe_usage() before begin_day()");
  RLBLH_REQUIRE(n == next_observe_n_ && n + 1 == next_reading_n_,
                "RlBlhPolicy: usage must be observed right after reading()");
  RLBLH_REQUIRE(usage >= 0.0, "RlBlhPolicy: usage must be >= 0");
  today_usage_.push_back(usage);
  // S_k(a) accumulation (paper Eq. 7).
  pending_savings_ +=
      prices_->rate(n) *
      (usage - config_.action_magnitude(pending_action_));
  next_observe_n_ = n + 1;
}

void RlBlhPolicy::observe_block(std::size_t n0, ConstTraceLane usage) {
  RLBLH_REQUIRE(day_open_, "RlBlhPolicy: observe_block() before begin_day()");
  RLBLH_REQUIRE(n0 == next_observe_n_ &&
                    n0 + usage.size() == next_reading_n_,
                "RlBlhPolicy: block must be observed right after "
                "fill_block()");
  // S_k(a) accumulation (paper Eq. 7): the same expression and the same
  // per-interval += order as observe_usage(), with the loop-invariant rate
  // lookup and pulse magnitude hoisted (identical values, identical FP op
  // sequence, so the accumulated sum is bitwise equal). The view may be a
  // strided lane of the batch engine's interval-major day — only the load
  // addresses differ from the contiguous case.
  const double magnitude = config_.action_magnitude(pending_action_);
  const double* const rates = prices_->rates().data();
  const double* const values = usage.data();
  const std::size_t stride = usage.stride();
  double pending = pending_savings_;
  for (std::size_t i = 0; i < usage.size(); ++i) {
    const double x = values[i * stride];
    RLBLH_REQUIRE(x >= 0.0, "RlBlhPolicy: usage must be >= 0");
    today_usage_.push_back(x);
    pending += rates[n0 + i] * (x - magnitude);
  }
  pending_savings_ = pending;
  next_observe_n_ = n0 + usage.size();
}

void RlBlhPolicy::fill_lanes(std::span<BlhPolicy* const> lanes,
                             std::size_t n0, std::size_t width,
                             const double* levels, double* y_out) {
  const std::size_t w = lanes.size();
  lane_rngs_.resize(w);
  lane_eps_.resize(w);
  lane_coins_.resize(w);
  lane_allowed_.resize(w);
  lane_greedy_.resize(w);

  // Phase 1, per lane: the pre-coin half of fill_block — validation, the
  // pending decision's finalize (its bernoulli under double-Q drawn from
  // the lane's own engine, in its scalar stream position) and the greedy
  // argmax. The features are evaluated once and stored directly as the
  // pending features (a pure function of (k, level); the scalar path
  // computes the identical array twice).
  for (std::size_t k = 0; k < w; ++k) {
    auto& lane = static_cast<RlBlhPolicy&>(*lanes[k]);
    const double battery_level = levels[k];
    RLBLH_REQUIRE(lane.day_open_,
                  "RlBlhPolicy: fill_lanes() before begin_day()");
    RLBLH_REQUIRE(n0 == lane.next_reading_n_ && n0 == lane.next_observe_n_,
                  "RlBlhPolicy: blocks must be requested in interval order");
    RLBLH_REQUIRE(n0 % lane.config_.decision_interval == 0,
                  "RlBlhPolicy: block must start on a decision boundary");
    const std::size_t kk = n0 / lane.config_.decision_interval;
    RLBLH_REQUIRE(width == lane.config_.decision_width(kk),
                  "RlBlhPolicy: block width must match the decision width");
    if (n0 == 0) lane.initial_level_today_ = battery_level;
    const double alpha_now = lane.current_alpha();
    if (lane.pending_active_) {
      lane.finalize_pending(kk, battery_level, /*terminal=*/false, alpha_now);
    }
    lane_eps_[k] = lane.exploration_ ? lane.current_epsilon() : 0.0;
    const auto& allowed = lane.allowed_actions(battery_level);
    const auto features = lane.basis_.at(kk, battery_level);
    lane_allowed_[k] = &allowed;
    lane_greedy_[k] = lane.acting_argmax(features, allowed);
    lane.pending_features_ = features;
    lane.pending_k_ = kk;
    lane_rngs_[k] = &lane.rng_;
  }

  // Phase 2: every lane's epsilon coin in one lane-batched pass.
  fill_uniform_lanes(lane_rngs_, lane_coins_);

  // Phase 3, per lane: resolve epsilon-greedy (exploring lanes draw their
  // index from their own engine, right after their coin — the scalar
  // order) and publish the pending decision.
  for (std::size_t k = 0; k < w; ++k) {
    auto& lane = static_cast<RlBlhPolicy&>(*lanes[k]);
    const std::vector<std::size_t>& allowed = *lane_allowed_[k];
    std::size_t chosen = lane_greedy_[k];
    if (lane_coins_[k] < lane_eps_[k]) {
      const auto i = static_cast<std::size_t>(
          lane.rng_.uniform_int(0, static_cast<int>(allowed.size() - 1)));
      chosen = allowed[i];
    }
    lane.pending_explored_ = chosen != lane_greedy_[k];
    lane.pending_active_ = true;
    lane.pending_action_ = chosen;
    lane.pending_savings_ = 0.0;
    lane.next_reading_n_ = n0 + width;
    y_out[k] = lane.config_.action_magnitude(chosen);
  }
}

void RlBlhPolicy::observe_lanes(std::span<BlhPolicy* const> lanes,
                                std::size_t n0, const LaneBlock& usage) {
  // One virtual call for the block; the per-lane observes devirtualize
  // (RlBlhPolicy is final) and read their strided lane views in place.
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    static_cast<RlBlhPolicy&>(*lanes[k]).observe_block(n0, usage.lane(k));
  }
}

void RlBlhPolicy::end_day() {
  RLBLH_REQUIRE(day_open_, "RlBlhPolicy: end_day() before begin_day()");
  RLBLH_REQUIRE(next_observe_n_ == config_.intervals_per_day,
                "RlBlhPolicy: day ended before all intervals were observed");
  finalize_pending(0, 0.0, /*terminal=*/true, current_alpha());

  RlBlhDayStats stats;
  stats.mean_abs_td_error =
      decisions_done_ == 0
          ? 0.0
          : abs_error_sum_ / static_cast<double>(decisions_done_);
  stats.signed_td_error = signed_error_sum_;
  stats.realized_savings = savings_sum_;
  stats.exploring_decisions = explored_count_;
  day_stats_.push_back(stats);

  // Learning-progress telemetry (end_day is far off the interval hot path;
  // the weight-norm pass is guarded so dormant observability costs one
  // branch). Instrumentation only reads values — the Rng is never touched,
  // keeping obs-on runs bitwise identical to obs-off runs.
  RLBLH_OBS_COUNT("rl.real_days", 1);
  RLBLH_OBS_COUNT("rl.decisions", decisions_done_);
  RLBLH_OBS_COUNT("rl.explored_decisions", explored_count_);
  RLBLH_OBS_OBSERVE("rl.day_mean_abs_td_error", stats.mean_abs_td_error);
  RLBLH_OBS_OBSERVE("rl.day_realized_savings_cents", stats.realized_savings);
  RLBLH_OBS_GAUGE("rl.signed_td_error", stats.signed_td_error);
  RLBLH_OBS_GAUGE("rl.exploration_rate",
                  exploration_ ? current_epsilon() : 0.0);
  RLBLH_OBS_GAUGE("rl.learning_rate", current_alpha());
  if (obs::enabled()) {
    RLBLH_OBS_GAUGE("rl.weight_norm", weight_norm(q_));
    if (config_.double_q) {
      RLBLH_OBS_GAUGE("rl.weight_norm_q2", weight_norm(q2_));
    }
  }

  // Per-interval statistics feed the SYN heuristic. The buffer was already
  // validated interval by interval as it was observed, so a view suffices —
  // no day-sized copy on the batch hot path.
  stats_.observe_day(ConstTraceLane(today_usage_.data(), 1,
                                    today_usage_.size()),
                     rng_);

  ++day_;
  if (learning_) ++episodes_;
  day_open_ = false;

  if (!learning_) return;
  const std::size_t d = day_;  // 1-based day index, as in Algorithm 1
  const auto replay_start = [this] {
    return config_.replay_random_start
               ? rng_.uniform(0.0, config_.battery_capacity)
               : initial_level_today_;
  };
  if (config_.enable_reuse && d <= config_.reuse_days) {
    for (std::size_t v = 0; v < config_.reuse_repeats; ++v) {
      train_virtual_day(today_usage_, replay_start());
    }
  }
  if (config_.enable_synthetic && d % config_.synthetic_period == 0 &&
      d <= config_.synthetic_last_day) {
    for (std::size_t v = 0; v < config_.synthetic_repeats; ++v) {
      const DayTrace synthetic = stats_.sample_day(rng_);
      train_virtual_day(synthetic.values(), replay_start());
    }
  }
}

double RlBlhPolicy::train_virtual_day(const std::vector<double>& usage,
                                      double initial_level) {
  RLBLH_REQUIRE(prices_.has_value(),
                "RlBlhPolicy: no price schedule yet (run a real day first)");
  RLBLH_REQUIRE(usage.size() == config_.intervals_per_day,
                "RlBlhPolicy: virtual day must have n_M usage values");
  const double alpha_now = current_alpha();
  const double epsilon_now = exploration_ ? current_epsilon() : 0.0;
  const std::size_t k_max = config_.decisions_per_day();
  const std::size_t n_d = config_.decision_interval;

  double level =
      std::clamp(initial_level, 0.0, config_.battery_capacity);
  double abs_error = 0.0;

  for (std::size_t k = 0; k < k_max; ++k) {
    const auto features = basis_.at(k, level);
    const auto& allowed = allowed_actions(level);
    const std::size_t greedy = acting_argmax(features, allowed);
    const std::size_t action =
        epsilon_greedy(allowed, greedy, epsilon_now, rng_);
    const double magnitude = config_.action_magnitude(action);

    double savings = 0.0;
    const std::size_t width = config_.decision_width(k);
    for (std::size_t i = 0; i < width; ++i) {
      const std::size_t n = k * n_d + i;
      const double x = std::clamp(usage[n], 0.0, config_.usage_cap);
      savings += prices_->rate(n) * (x - magnitude);
      level += magnitude - x;
    }
    // The feasibility rule keeps a lossless battery within bounds; clamp
    // defensively so replayed data with out-of-band values cannot corrupt
    // the state normalization.
    level = std::clamp(level, 0.0, config_.battery_capacity);

    const bool use_first = config_.double_q ? rng_.bernoulli(0.5) : true;
    PerActionLinearQ& learner = use_first ? q_ : q2_;
    double target = savings;
    if (k + 1 < k_max) {
      const auto next_features = basis_.at(k + 1, level);
      target += bootstrap_value(next_features, allowed_actions(level),
                                use_first);
    }
    const double delta_q = target - learner.value(features, action);
    if (learning_) {
      learner.sgd_update(action, features, delta_q, alpha_now);
    }
    abs_error += std::abs(delta_q);
  }
  if (learning_) ++episodes_;
  RLBLH_OBS_COUNT("rl.virtual_days", 1);
  return abs_error / static_cast<double>(k_max);
}

void RlBlhPolicy::save_state(std::ostream& out) const {
  // Between end_day() and begin_day() the day-scoped members are all at
  // their rest values and the pending decision is resolved, so the
  // persistent state below is the complete behavioral state: every future
  // draw, decision and update is a pure function of it plus future inputs.
  RLBLH_REQUIRE(!day_open_,
                "RlBlhPolicy::save_state: checkpoint only between days");
  out << "rlblh-policy v1\n";
  out << "day " << day_ << " episodes " << episodes_ << " learning "
      << (learning_ ? 1 : 0) << " exploration " << (exploration_ ? 1 : 0)
      << '\n';
  save_weights(out, q_);
  save_weights(out, q2_);
  save_rng(out, rng_);
  stats_.save(out);
  out << "end rlblh-policy\n";
}

void RlBlhPolicy::load_state(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "rlblh-policy v1") {
    throw DataError("rlblh-policy: missing or wrong header (expected "
                    "'rlblh-policy v1')");
  }
  std::size_t day = 0, episodes = 0;
  int learning = 0, exploration = 0;
  if (!std::getline(in, line)) {
    throw DataError("rlblh-policy: truncated file (no counters line)");
  }
  {
    std::string day_word, episodes_word, learning_word, exploration_word;
    std::istringstream counters(line);
    if (!(counters >> day_word >> day >> episodes_word >> episodes >>
          learning_word >> learning >> exploration_word >> exploration) ||
        day_word != "day" || episodes_word != "episodes" ||
        learning_word != "learning" || exploration_word != "exploration" ||
        (learning != 0 && learning != 1) ||
        (exploration != 0 && exploration != 1)) {
      throw DataError("rlblh-policy: malformed counters line '" + line + "'");
    }
  }
  // Parse into temporaries first: a malformed tail must not leave the
  // policy half-restored.
  PerActionLinearQ q = load_weights(in);
  PerActionLinearQ q2 = load_weights(in);
  if (q.num_actions() != q_.num_actions() || q.dimension() != q_.dimension() ||
      q2.num_actions() != q2_.num_actions() ||
      q2.dimension() != q2_.dimension()) {
    throw DataError(
        "rlblh-policy: weight table dimensions do not match the "
        "configuration");
  }
  Rng rng = load_rng(in);
  UsageStatsTracker stats(config_.intervals_per_day, config_.usage_cap,
                          config_.stats_bins, config_.stats_reservoir);
  stats.load(in);
  std::string end_word, end_name;
  if (!(in >> end_word >> end_name) || end_word != "end" ||
      end_name != "rlblh-policy") {
    throw DataError("rlblh-policy: missing end marker");
  }

  q_ = std::move(q);
  q2_ = std::move(q2);
  rng_ = rng;
  stats_ = std::move(stats);
  day_ = day;
  episodes_ = episodes;
  learning_ = learning == 1;
  exploration_ = exploration == 1;

  // Day-scoped state returns to its rest values (begin_day() re-derives
  // everything else); the diagnostic history is not checkpointed.
  prices_.reset();
  day_open_ = false;
  next_reading_n_ = 0;
  next_observe_n_ = 0;
  today_usage_.clear();
  initial_level_today_ = 0.0;
  pending_active_ = false;
  abs_error_sum_ = 0.0;
  signed_error_sum_ = 0.0;
  savings_sum_ = 0.0;
  decisions_done_ = 0;
  explored_count_ = 0;
  day_stats_.clear();
}

}  // namespace rlblh
