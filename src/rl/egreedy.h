// Epsilon-greedy selection over a constrained candidate set.
//
// RL-BLH restricts the feasible action set near the battery bounds, so the
// explore/exploit choice must be made over an arbitrary subset of actions
// (paper Algorithm 1, lines 5-10).
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace rlblh {

/// Picks an element of `candidates`: with probability epsilon a uniformly
/// random candidate, otherwise `greedy_choice` (which must be one of the
/// candidates). Returns the chosen value.
inline std::size_t epsilon_greedy(const std::vector<std::size_t>& candidates,
                                  std::size_t greedy_choice, double epsilon,
                                  Rng& rng) {
  RLBLH_REQUIRE(!candidates.empty(), "epsilon_greedy: empty candidate set");
  RLBLH_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0,
                "epsilon_greedy: epsilon must be in [0,1]");
  if (rng.uniform() < epsilon) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(candidates.size() - 1)));
    return candidates[i];
  }
#ifndef NDEBUG
  bool found = false;
  for (const std::size_t c : candidates) {
    if (c == greedy_choice) {
      found = true;
      break;
    }
  }
  RLBLH_ASSERT(found && "greedy choice must be a candidate");
#endif
  return greedy_choice;
}

}  // namespace rlblh
