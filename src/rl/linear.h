// Linear function approximation over fixed feature vectors.
//
// Q(s, a) is approximated as w_a . f(s) (paper Eq. 13); learning adjusts the
// weights by stochastic gradient steps w += alpha * delta * f(s) (Eq. 18).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.h"

namespace rlblh {

/// A single linear functional w . f over feature vectors of fixed dimension.
class LinearFunction {
 public:
  /// Zero-initialized weights of the given dimension (>= 1).
  explicit LinearFunction(std::size_t dimension);

  /// Starts from explicit weights.
  explicit LinearFunction(std::vector<double> weights);

  /// Feature dimension.
  std::size_t dimension() const { return weights_.size(); }

  /// Evaluates w . features. The span size must equal dimension().
  double value(std::span<const double> features) const;

  /// Gradient step w += step_size * error * features (paper Eq. 18).
  void sgd_update(std::span<const double> features, double error,
                  double step_size);

  /// Read access to the weights.
  const std::vector<double>& weights() const { return weights_; }

  /// Overwrites the weights (dimension must match).
  void set_weights(std::vector<double> weights);

 private:
  std::vector<double> weights_;
};

}  // namespace rlblh
