// Hyper-parameter decay schedules.
//
// The paper decays both the learning rate alpha and the exploration rate
// epsilon "by a factor of 1/sqrt(d) across days, where d means the number of
// days" (Section VII-A).
#pragma once

#include <cmath>
#include <cstddef>

#include "util/error.h"

namespace rlblh {

/// value(d) = base / sqrt(d) for day d >= 1 (day 1 returns the base value).
class InverseSqrtDecay {
 public:
  /// Requires base >= 0.
  explicit InverseSqrtDecay(double base) : base_(base) {
    RLBLH_REQUIRE(base >= 0.0, "InverseSqrtDecay: base must be >= 0");
  }

  /// Decayed value on day d (1-based). Requires d >= 1.
  double at(std::size_t day) const {
    RLBLH_REQUIRE(day >= 1, "InverseSqrtDecay: day index is 1-based");
    return base_ / std::sqrt(static_cast<double>(day));
  }

  /// Undecayed base value.
  double base() const { return base_; }

 private:
  double base_;
};

/// Constant schedule (used by ablations that disable decay).
class ConstantSchedule {
 public:
  explicit ConstantSchedule(double value) : value_(value) {
    RLBLH_REQUIRE(value >= 0.0, "ConstantSchedule: value must be >= 0");
  }

  /// Returns the constant value for any day.
  double at(std::size_t /*day*/) const { return value_; }

 private:
  double value_;
};

}  // namespace rlblh
