// Small dense linear algebra for the LSPI/LSTD solver.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace rlblh {

/// Row-major square matrix of doubles.
class Matrix {
 public:
  /// Zero matrix of size n x n (n >= 1).
  explicit Matrix(std::size_t n);

  /// Side length.
  std::size_t size() const { return n_; }

  /// Element access (bounds-checked).
  double at(std::size_t r, std::size_t c) const;
  double& at(std::size_t r, std::size_t c);

  /// Adds outer * a b^T (rank-one update used by LSTD accumulation).
  void add_outer(const std::vector<double>& a, const std::vector<double>& b,
                 double scale = 1.0);

  /// Adds `value` to every diagonal element (ridge regularization).
  void add_diagonal(double value);

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// Result of a linear solve attempt.
struct SolveResult {
  std::optional<std::vector<double>> solution;  ///< empty when near-singular
  double min_pivot = 0.0;  ///< smallest absolute pivot encountered
};

/// Solves A x = b by Gaussian elimination with partial pivoting. Declares the
/// system near-singular (no solution returned) when a pivot's magnitude falls
/// below `pivot_threshold` relative to the largest row entry.
SolveResult solve_linear_system(Matrix a, std::vector<double> b,
                                double pivot_threshold = 1e-10);

}  // namespace rlblh
