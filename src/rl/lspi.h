// Least-squares temporal-difference solver (LSTD-Q, the core of LSPI).
//
// The paper considered least-squares policy iteration as a closed-form
// alternative to the SGD update (Section V, footnote 4) and found that "it
// produces a matrix, which can be singular with a high chance" because the
// feature difference between consecutive states (k, B_k) and (k+1, B_{k+1})
// is nearly constant across k, reducing the system to an under-determined
// one. We implement LSTD-Q so that tests and an ablation benchmark can
// reproduce exactly that failure mode, and so the near-singularity is a
// measured fact rather than a citation.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "rl/linalg.h"

namespace rlblh {

/// Accumulates LSTD-Q normal equations  A w = b  with
///   A = sum_t phi_t (phi_t - gamma * phi'_t)^T,   b = sum_t phi_t r_t
/// and solves them on demand.
class LstdSolver {
 public:
  /// Feature dimension (>= 1); gamma is the discount (1 for the paper's
  /// finite-horizon day problem).
  explicit LstdSolver(std::size_t dimension, double gamma = 1.0);

  /// Adds one transition sample: features at the visited state-action,
  /// features at the successor's greedy state-action (all zeros at terminal
  /// states), and the observed reward.
  void add_sample(const std::vector<double>& phi,
                  const std::vector<double>& phi_next, double reward);

  /// Number of samples accumulated.
  std::size_t samples() const { return samples_; }

  /// Attempts to solve for the weights. Returns the solution when the system
  /// is well-conditioned; empty when near-singular (the paper's observed
  /// case). `ridge` > 0 adds Tikhonov regularization before solving.
  SolveResult solve(double ridge = 0.0) const;

  /// Resets the accumulated system.
  void reset();

 private:
  std::size_t dim_;
  double gamma_;
  std::size_t samples_ = 0;
  Matrix a_;
  std::vector<double> b_;
};

}  // namespace rlblh
