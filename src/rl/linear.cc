#include "rl/linear.h"

namespace rlblh {

LinearFunction::LinearFunction(std::size_t dimension)
    : weights_(dimension, 0.0) {
  RLBLH_REQUIRE(dimension >= 1, "LinearFunction: dimension must be >= 1");
}

LinearFunction::LinearFunction(std::vector<double> weights)
    : weights_(std::move(weights)) {
  RLBLH_REQUIRE(!weights_.empty(), "LinearFunction: dimension must be >= 1");
}

double LinearFunction::value(std::span<const double> features) const {
  RLBLH_REQUIRE(features.size() == weights_.size(),
                "LinearFunction: feature dimension mismatch");
  double v = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    v += weights_[i] * features[i];
  }
  return v;
}

void LinearFunction::sgd_update(std::span<const double> features, double error,
                                double step_size) {
  RLBLH_REQUIRE(features.size() == weights_.size(),
                "LinearFunction: feature dimension mismatch");
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] += step_size * error * features[i];
  }
}

void LinearFunction::set_weights(std::vector<double> weights) {
  RLBLH_REQUIRE(weights.size() == weights_.size(),
                "LinearFunction: dimension mismatch");
  weights_ = std::move(weights);
}

}  // namespace rlblh
