#include "rl/lspi.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/error.h"

namespace rlblh {

LstdSolver::LstdSolver(std::size_t dimension, double gamma)
    : dim_(dimension), gamma_(gamma), a_(dimension), b_(dimension, 0.0) {
  RLBLH_REQUIRE(dimension >= 1, "LstdSolver: dimension must be >= 1");
  RLBLH_REQUIRE(gamma >= 0.0 && gamma <= 1.0,
                "LstdSolver: gamma must be in [0,1]");
}

void LstdSolver::add_sample(const std::vector<double>& phi,
                            const std::vector<double>& phi_next,
                            double reward) {
  RLBLH_REQUIRE(phi.size() == dim_ && phi_next.size() == dim_,
                "LstdSolver: feature dimension mismatch");
  std::vector<double> diff(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    diff[i] = phi[i] - gamma_ * phi_next[i];
  }
  a_.add_outer(phi, diff);
  for (std::size_t i = 0; i < dim_; ++i) b_[i] += phi[i] * reward;
  ++samples_;
}

SolveResult LstdSolver::solve(double ridge) const {
  RLBLH_REQUIRE(ridge >= 0.0, "LstdSolver: ridge must be >= 0");
  RLBLH_OBS_SPAN("lspi.solve");
  Matrix a = a_;
  if (ridge > 0.0) a.add_diagonal(ridge);
  SolveResult result = solve_linear_system(std::move(a), b_);
  RLBLH_OBS_COUNT("lspi.solves", 1);
  if (!result.solution.has_value()) {
    // The paper's observed failure mode; worth counting, not just citing.
    RLBLH_OBS_COUNT("lspi.singular_systems", 1);
  }
  RLBLH_OBS_GAUGE("lspi.samples", samples_);
  return result;
}

void LstdSolver::reset() {
  a_ = Matrix(dim_);
  std::fill(b_.begin(), b_.end(), 0.0);
  samples_ = 0;
}

}  // namespace rlblh
