#include "rl/linalg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace rlblh {

Matrix::Matrix(std::size_t n) : n_(n), data_(n * n, 0.0) {
  RLBLH_REQUIRE(n >= 1, "Matrix: size must be >= 1");
}

double Matrix::at(std::size_t r, std::size_t c) const {
  RLBLH_REQUIRE(r < n_ && c < n_, "Matrix: index out of range");
  return data_[r * n_ + c];
}

double& Matrix::at(std::size_t r, std::size_t c) {
  RLBLH_REQUIRE(r < n_ && c < n_, "Matrix: index out of range");
  return data_[r * n_ + c];
}

void Matrix::add_outer(const std::vector<double>& a,
                       const std::vector<double>& b, double scale) {
  RLBLH_REQUIRE(a.size() == n_ && b.size() == n_,
                "Matrix::add_outer: vector dimension mismatch");
  for (std::size_t r = 0; r < n_; ++r) {
    const double ar = scale * a[r];
    if (ar == 0.0) continue;
    for (std::size_t c = 0; c < n_; ++c) {
      data_[r * n_ + c] += ar * b[c];
    }
  }
}

void Matrix::add_diagonal(double value) {
  for (std::size_t i = 0; i < n_; ++i) data_[i * n_ + i] += value;
}

SolveResult solve_linear_system(Matrix a, std::vector<double> b,
                                double pivot_threshold) {
  const std::size_t n = a.size();
  RLBLH_REQUIRE(b.size() == n, "solve_linear_system: dimension mismatch");

  // Scale reference for the relative singularity test.
  double max_entry = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      max_entry = std::max(max_entry, std::abs(a.at(r, c)));
    }
  }
  if (max_entry == 0.0) return {std::nullopt, 0.0};

  SolveResult result;
  result.min_pivot = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    std::size_t best = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(perm[r], col)) > std::abs(a.at(perm[best], col))) {
        best = r;
      }
    }
    std::swap(perm[col], perm[best]);
    const double pivot = a.at(perm[col], col);
    result.min_pivot = std::min(result.min_pivot, std::abs(pivot));
    if (std::abs(pivot) < pivot_threshold * max_entry) {
      result.solution = std::nullopt;
      return result;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(perm[r], col) / pivot;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.at(perm[r], c) -= factor * a.at(perm[col], c);
      }
      b[perm[r]] -= factor * b[perm[col]];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[perm[i]];
    for (std::size_t c = i + 1; c < n; ++c) {
      sum -= a.at(perm[i], c) * x[c];
    }
    x[i] = sum / a.at(perm[i], i);
  }
  result.solution = std::move(x);
  return result;
}

}  // namespace rlblh
